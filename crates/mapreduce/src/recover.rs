//! Failure recovery for the coded engine: fail-fast panic payloads, the
//! alive-aware stage synchronizer, and the speculative re-execution
//! planner that rebuilds a dead rank's reduce partition on a
//! deterministic successor.
//!
//! The coded engine's recovery story leans on a CDC-specific fact: with
//! quorum (MDS) decode, a single dead rank costs the shuffle *nothing* —
//! every multicast group that contained it still fields `r − 1` live
//! senders, which is exactly the quorum each surviving receiver needs.
//! The only thing actually lost is the dead rank's own reduce partition,
//! and the `r`-fold replicated input placement guarantees that for every
//! file some survivor can either forward the needed intermediate from its
//! Map output or re-run Map on its local replica
//! ([`adopt_dead_partitions`]). Recovery is therefore re-execution of
//! *only the missing work*, never a restart.

use std::time::Duration;

use bytes::Bytes;
use cts_core::exec::WorkerPool;
use cts_core::intermediate::MapOutputStore;
use cts_core::placement::{FileId, PlacementPlan};
use cts_net::fault::CrashPoint;
use cts_net::health::HealthBoard;
use cts_net::message::Tag;
use cts_net::registry::MembershipView;
use cts_net::Communicator;
use cts_netsim::stats::NodeStats;

use crate::error::{EngineError, JobReport, Result};
use crate::workload::Workload;

/// Panic payload thrown by a fail-stop crash injection when recovery is
/// off. The cluster runner's panic-safe teardown unblocks every other
/// rank, and `run_coded` downcasts this into
/// [`EngineError::RankDied`] — a typed fast failure instead of a hang.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPanic {
    /// The rank that died.
    pub rank: usize,
    /// Where in the job it died.
    pub point: CrashPoint,
}

/// Panic payload thrown when recovery capacity is exhausted (more dead
/// senders in a multicast group than the quorum margin tolerates). Rides
/// the same teardown path as [`CrashPanic`]; `run_coded` downcasts it
/// into [`EngineError::Unrecoverable`].
#[derive(Clone, Debug)]
pub struct RecoveryAbort(
    /// The structured post-mortem: dead ranks and unsatisfiable groups.
    pub JobReport,
);

/// Reads a little-endian dead-mask payload (up to 16 bytes).
fn le_mask(b: &Bytes) -> u128 {
    let mut buf = [0u8; 16];
    let n = b.len().min(16);
    buf[..n].copy_from_slice(&b[..n]);
    u128::from_le_bytes(buf)
}

/// An alive-aware replacement for [`Communicator::barrier`]: ranks
/// exchange dead-masks through the minimum-alive coordinator, and nobody
/// ever blocks on a peer its [`HealthBoard`] has declared dead. Returns
/// the agreed dead mask (the union of every participant's view), already
/// merged into `board`.
///
/// Every rank must call this with the same `epoch` at the same stage
/// boundary (SPMD). If the coordinator itself is declared dead mid-sync,
/// non-coordinators re-submit their masks to the next minimum-alive rank,
/// so the sync converges for any set of fail-stop deaths that leaves at
/// least one survivor. Control messages ride [`Tag::RBARRIER`] directly
/// on the transport, keeping the trace and NIC emulation free of
/// health-protocol noise.
pub fn alive_sync(comm: &Communicator, board: &mut HealthBoard, epoch: u32) -> Result<u128> {
    let me = comm.rank();
    let k = comm.world_size();
    let tag = Tag::new(Tag::RBARRIER, epoch & 0x00FF_FFFF);
    let transport = comm.transport();
    let poll = Duration::from_micros(100);
    if k == 1 {
        return Ok(board.dead_mask());
    }
    let mut sent_to: Option<usize> = None;
    loop {
        board.tick(transport.as_ref());
        let coord = board.min_alive();
        if coord == me {
            // Coordinator: collect a mask from every rank still believed
            // alive (skipping any declared dead while we wait), then
            // release everyone with the union.
            let mut s = 0;
            while s < k {
                if s == me || !board.is_alive(s) {
                    s += 1;
                    continue;
                }
                match transport.try_recv(s, tag)? {
                    Some(mask) => {
                        board.merge_dead_mask(le_mask(&mask), transport.as_ref());
                        s += 1;
                    }
                    None => {
                        board.tick(transport.as_ref());
                        std::thread::sleep(poll);
                    }
                }
            }
            let agreed = board.dead_mask();
            let payload = Bytes::copy_from_slice(&agreed.to_le_bytes());
            for dst in (0..k).filter(|&d| d != me && board.is_alive(d)) {
                // A release that cannot be delivered is the dead peer's
                // problem; its own detector-driven path takes over.
                let _ = transport.send(dst, tag, payload.clone());
            }
            return Ok(agreed);
        }
        // Non-coordinator: (re-)submit our mask whenever the coordinator
        // changes, then poll for its release while watching its health.
        if sent_to != Some(coord) {
            let payload = Bytes::copy_from_slice(&board.dead_mask().to_le_bytes());
            let _ = transport.send(coord, tag, payload);
            sent_to = Some(coord);
        }
        if let Some(release) = transport.try_recv(coord, tag)? {
            board.merge_dead_mask(le_mask(&release), transport.as_ref());
            return Ok(board.dead_mask());
        }
        std::thread::sleep(poll);
    }
}

/// Rebuilds every dead rank's reduce partition on its deterministic
/// successor (`MembershipView::successor_of` — the next alive rank
/// cyclically). This is the speculative re-execution half of recovery.
///
/// All survivors call this with the same agreed `membership`, so each
/// derives the identical `(helper, successor)` role per `(dead rank,
/// file)` and the unicasts pair up without further coordination. For a
/// dead rank `d` and file placed on node set `S`, the piece `I^d_S`
/// comes from one of three sources, per the §IV-B keep rule:
///
/// * `d ∉ S` and the successor is in `S`: the successor kept the piece
///   during its own Map — no traffic;
/// * `d ∉ S`, successor outside `S`: the minimum-alive member of `S`
///   forwards its kept copy;
/// * `d ∈ S`: only `d` itself kept the piece, so the minimum-alive
///   survivor of `S \ {d}` **re-runs Map** on its local replica of the
///   file and sends the rebuilt piece (the `r`-fold placement guarantees
///   such a survivor exists for any single failure at `r ≥ 2`).
///
/// Pieces arrive tagged `Tag::RECOVER` with `(dead index << 16) | file`,
/// so the engine caps recovery jobs at 65 536 files. Returns the
/// `(dead rank, reduced output)` pairs this rank adopted.
#[allow(clippy::too_many_arguments)] // mirrors the engine's finish_reduce
pub fn adopt_dead_partitions<W: Workload>(
    workload: &W,
    comm: &Communicator,
    plan: &PlacementPlan,
    membership: &MembershipView,
    my_files: &[(FileId, Bytes)],
    store: &MapOutputStore,
    pool: &WorkerPool,
    stats: &mut NodeStats,
) -> Result<Vec<(usize, Vec<u8>)>> {
    let me = comm.rank();
    let k = comm.world_size();
    let dead = membership.dead_ranks();
    let mut adopted = Vec::new();
    for (dead_idx, &d) in dead.iter().enumerate() {
        let successor = membership
            .successor_of(d)
            .expect("at least one rank survives");
        let mut pieces: Vec<(u64, Bytes)> = Vec::new();
        for fid in 0..plan.num_files() {
            let file = FileId(fid);
            let file_nodes = plan.nodes_of_file(file);
            let tag = Tag::new(Tag::RECOVER, ((dead_idx as u32) << 16) | fid as u32);
            if file_nodes.contains(d) {
                // Only `d` kept I^d_S: re-execute Map on a replica.
                let Some(helper) = file_nodes
                    .iter()
                    .find(|&u| u != d && membership.is_alive(u))
                else {
                    return Err(unrecoverable_file(membership, d, fid));
                };
                if helper == me {
                    let data = &my_files
                        .iter()
                        .find(|(f, _)| *f == file)
                        .expect("placement puts every file of S on all of S")
                        .1;
                    let piece = Bytes::from(
                        workload
                            .map_file(data, k)
                            .into_iter()
                            .nth(d)
                            .expect("map_file yields one piece per partition"),
                    );
                    if successor == me {
                        pieces.push((file_nodes.bits(), piece));
                    } else {
                        stats.sent_bytes += piece.len() as u64;
                        comm.send(successor, tag, piece)?;
                    }
                } else if successor == me {
                    let piece = comm.recv(helper, tag)?;
                    stats.recv_bytes += piece.len() as u64;
                    pieces.push((file_nodes.bits(), piece));
                }
            } else if file_nodes.contains(successor) {
                // The successor kept I^d_S in its own Map output.
                if successor == me {
                    let piece = store
                        .get(d, file_nodes)
                        .expect("keep rule: members of S hold I^d_S when d is outside S")
                        .clone();
                    pieces.push((file_nodes.bits(), piece));
                }
            } else {
                // Some member of S forwards its kept copy.
                let Some(helper) = file_nodes.iter().find(|&u| membership.is_alive(u)) else {
                    return Err(unrecoverable_file(membership, d, fid));
                };
                if helper == me {
                    let piece = store
                        .get(d, file_nodes)
                        .expect("keep rule: members of S hold I^d_S when d is outside S")
                        .clone();
                    stats.sent_bytes += piece.len() as u64;
                    comm.send(successor, tag, piece)?;
                } else if successor == me {
                    let piece = comm.recv(helper, tag)?;
                    stats.recv_bytes += piece.len() as u64;
                    pieces.push((file_nodes.bits(), piece));
                }
            }
        }
        if successor == me {
            // Identical assembly to `finish_reduce`: ascending file order,
            // concatenate, reduce — so the adopted output is byte-identical
            // to what the dead rank would have produced.
            pieces.sort_unstable_by_key(|(bits, _)| *bits);
            let total: usize = pieces.iter().map(|(_, b)| b.len()).sum();
            let mut partition = Vec::with_capacity(total);
            for (_, b) in &pieces {
                partition.extend_from_slice(b);
            }
            stats.reduce_input_bytes += partition.len() as u64;
            adopted.push((d, workload.reduce_par(d, &partition, pool)));
        }
    }
    Ok(adopted)
}

/// Every survivor computes this identically from the agreed membership,
/// so the whole cluster fails the job in unison — no rank is left
/// blocked on a recovery exchange that will never happen.
fn unrecoverable_file(membership: &MembershipView, d: usize, fid: u64) -> EngineError {
    EngineError::Unrecoverable(JobReport {
        dead: membership.dead_ranks(),
        unrecoverable_groups: Vec::new(),
        what: format!(
            "no survivor holds a replica of file {fid} needed to rebuild rank {d}'s partition"
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_net::cluster::{run_spmd, ClusterConfig};
    use cts_net::health::HealthConfig;

    #[test]
    fn mask_payloads_round_trip() {
        let mask = 0b1010_0110u128 | (1u128 << 100);
        assert_eq!(le_mask(&Bytes::copy_from_slice(&mask.to_le_bytes())), mask);
        assert_eq!(le_mask(&Bytes::new()), 0);
    }

    #[test]
    fn alive_sync_agrees_on_the_union_of_views() {
        // Rank 0 has locally declared rank 3 dead; after the sync every
        // rank must hold the same dead mask.
        let run = run_spmd(&ClusterConfig::local(4), |comm| {
            let mut board = HealthBoard::new(
                comm.rank(),
                4,
                HealthConfig::from_heartbeat(Duration::from_millis(5)),
            );
            if comm.rank() == 0 {
                board.declare_dead(3, comm.transport().as_ref());
            }
            if comm.rank() == 3 {
                // The "dead" rank does not participate — it crashed.
                return 0u128;
            }
            alive_sync(comm, &mut board, 7).unwrap()
        })
        .unwrap();
        assert_eq!(run.results[0], 0b1000);
        assert_eq!(run.results[1], 0b1000);
        assert_eq!(run.results[2], 0b1000);
    }

    #[test]
    fn alive_sync_survives_a_dead_coordinator() {
        // Rank 0 (the default coordinator) is dead in everyone's view:
        // rank 1 must take over and the sync must still complete.
        let run = run_spmd(&ClusterConfig::local(3), |comm| {
            let mut board = HealthBoard::new(
                comm.rank(),
                3,
                HealthConfig::from_heartbeat(Duration::from_millis(5)),
            );
            if comm.rank() == 0 {
                return 0u128;
            }
            board.declare_dead(0, comm.transport().as_ref());
            alive_sync(comm, &mut board, 1).unwrap()
        })
        .unwrap();
        assert_eq!(run.results[1], 0b1);
        assert_eq!(run.results[2], 0b1);
    }

    #[test]
    fn crash_payloads_are_cloneable_and_structured() {
        let c = CrashPanic {
            rank: 3,
            point: CrashPoint::MidEncode,
        };
        assert_eq!(c, c);
        let a = RecoveryAbort(JobReport {
            dead: vec![3],
            unrecoverable_groups: vec![9],
            what: "test".into(),
        });
        assert_eq!(a.0.dead, vec![3]);
    }
}
