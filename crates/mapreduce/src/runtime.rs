//! The resident job runtime: ownership inverted.
//!
//! The one-shot engines ([`run_uncoded`](crate::run_uncoded),
//! [`run_coded`](crate::run_coded)) let each job build and tear down its
//! own cluster, fabric, and thread pool. A [`JobRuntime`] turns that
//! inside out: *it* owns the [`SharedFabric`] (transports + trace
//! collector), the thread-lease [`Budget`], the bounded admission queue,
//! and the pool of job tag-namespace slots — and jobs are **submitted
//! into it**:
//!
//! ```text
//!                 ┌────────────────────────── JobRuntime ─┐
//!  submit ──────▶ │ AdmissionQueue (bounded, refuses when │
//!  (JobHandle)    │   full → EngineError::Busy)           │
//!                 │   │ dequeue                           │
//!                 │   ▼                                   │
//!                 │ dispatchers (max_concurrent threads)  │
//!                 │   │ lease slot 1..=63 (SlotPool)      │
//!                 │   ▼                                   │
//!                 │ SharedFabric::run_job(binding, …)     │
//!                 │   tags/trace/NIC scoped per job       │
//!                 │ Budget: all jobs' WorkerPools lease   │
//!                 │   threads cooperatively (yield_slices)│
//!                 └───────────────────────────────────────┘
//! ```
//!
//! **Exclusive mode** (`max_concurrent == 1`) runs every job at slot 0:
//! the full 24-bit tag space and speculative recovery stay available,
//! exactly like a one-shot run, just resident. **Multi mode** leases
//! nonzero slots, giving up recovery (unscoped heartbeats would poison
//! neighbors) and 6 tag-sequence bits in exchange for true concurrency.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use cts_core::exec::Budget;
use cts_core::metrics::{Counter, Gauge, Histogram};
use cts_net::admission::{AdmissionQueue, SlotPool};
use cts_net::cluster::{JobBinding, SharedFabric};
use parking_lot::{Condvar, Mutex};

use crate::coded::run_coded_on;
use crate::error::{EngineError, Result};
use crate::stage::EngineConfig;
use crate::uncoded::{run_uncoded_on, JobOutcome};
use crate::workload::Workload;

/// Construction parameters for a [`JobRuntime`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// The engine configuration every job starts from (cluster shape,
    /// fabric, field, threads, …). Jobs may refine their own copy via
    /// [`JobContext::cfg`] but the cluster world is fixed at build time.
    pub template: EngineConfig,
    /// Bound on jobs waiting for a dispatcher. Submissions beyond it fail
    /// fast with [`EngineError::Busy`].
    pub queue_capacity: usize,
    /// Dispatcher threads = jobs actually running at once, `1..=63`.
    /// `1` selects exclusive mode (slot 0: full tag space, recovery
    /// allowed); `> 1` leases nonzero job slots.
    pub max_concurrent: usize,
    /// Cooperative yield granularity applied to every job's worker pools
    /// (see [`EngineConfig::yield_slices`]).
    pub yield_slices: usize,
    /// Size of the runtime-owned thread-lease [`Budget`] all jobs share.
    /// `0` (the default) uses the machine's available parallelism.
    pub pool_threads: usize,
}

impl RuntimeConfig {
    /// A runtime serving jobs shaped like `template`: queue of 16, up to
    /// 4 concurrent jobs, 8 yield slices, machine-sized budget.
    pub fn new(template: EngineConfig) -> Self {
        RuntimeConfig {
            template,
            queue_capacity: 16,
            max_concurrent: 4,
            yield_slices: 8,
            pool_threads: 0,
        }
    }

    /// Sets the admission-queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the concurrent-job cap (dispatcher count).
    pub fn with_max_concurrent(mut self, max: usize) -> Self {
        self.max_concurrent = max;
        self
    }

    /// Sets the cooperative yield granularity for all jobs.
    pub fn with_yield_slices(mut self, slices: usize) -> Self {
        self.yield_slices = slices;
        self
    }

    /// Sets the shared budget size (`0` = available parallelism).
    pub fn with_pool_threads(mut self, threads: usize) -> Self {
        self.pool_threads = threads;
        self
    }
}

/// Where a submitted job is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a dispatcher.
    Queued,
    /// A dispatcher is running it on the fabric.
    Running,
    /// Finished successfully; the outcome is (or was) available.
    Done,
    /// Finished with the contained error message.
    Failed(String),
}

impl JobStatus {
    /// True once the job will make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed(_))
    }
}

/// What a dispatcher hands a job when it runs: the shared fabric, the
/// job's binding on it, and a ready-to-use engine configuration (the
/// runtime template with this job's binding, budget, and yield slices
/// applied).
pub struct JobContext<'a> {
    /// The resident fabric the job runs over.
    pub fabric: &'a SharedFabric,
    /// This job's slot + trace id.
    pub binding: JobBinding,
    /// Per-job engine configuration. Jobs may clone and refine it (e.g.
    /// installing a per-tenant NIC profile) before calling the `_with`
    /// runners.
    pub cfg: EngineConfig,
}

impl JobContext<'_> {
    /// Runs `workload` uncoded on this job's binding with [`Self::cfg`].
    pub fn run_uncoded<W: Workload>(&self, workload: &W, input: Bytes) -> Result<JobOutcome> {
        run_uncoded_on(self.fabric, self.binding, workload, input, &self.cfg)
    }

    /// Runs `workload` coded on this job's binding with [`Self::cfg`].
    pub fn run_coded<W: Workload>(&self, workload: &W, input: Bytes) -> Result<JobOutcome> {
        run_coded_on(self.fabric, self.binding, workload, input, &self.cfg)
    }

    /// Like [`Self::run_uncoded`] but with a caller-refined configuration
    /// (keep `k` and the cluster world unchanged).
    pub fn run_uncoded_with<W: Workload>(
        &self,
        workload: &W,
        input: Bytes,
        cfg: &EngineConfig,
    ) -> Result<JobOutcome> {
        run_uncoded_on(self.fabric, self.binding, workload, input, cfg)
    }

    /// Like [`Self::run_coded`] but with a caller-refined configuration.
    pub fn run_coded_with<W: Workload>(
        &self,
        workload: &W,
        input: Bytes,
        cfg: &EngineConfig,
    ) -> Result<JobOutcome> {
        run_coded_on(self.fabric, self.binding, workload, input, cfg)
    }
}

type BoxedJob = Box<dyn FnOnce(&JobContext<'_>) -> Result<JobOutcome> + Send>;

/// Runtime-level instruments, registered on the fabric's
/// [`MetricsHub`](cts_core::metrics::MetricsHub) at start. The stage
/// histograms record each finished job's slowest-node wall time per
/// stage (the paper's Fig. 9 breakdown), in nanoseconds, rendered as
/// seconds.
struct RuntimeMetrics {
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    running: Arc<Gauge>,
    stage_hists: Vec<(&'static str, Arc<Histogram>)>,
}

impl RuntimeMetrics {
    fn register(hub: &cts_core::metrics::MetricsHub) -> RuntimeMetrics {
        use crate::stage::stages;
        let stage_hists = [
            stages::CODEGEN,
            stages::MAP,
            stages::PACK_ENCODE,
            stages::SHUFFLE,
            stages::UNPACK_DECODE,
            stages::REDUCE,
        ]
        .into_iter()
        .map(|name| {
            (
                name,
                hub.histogram_with("cts_stage_seconds", "stage", name, 1e-9),
            )
        })
        .collect();
        RuntimeMetrics {
            submitted: hub.counter("cts_jobs_submitted_total"),
            completed: hub.counter("cts_jobs_completed_total"),
            failed: hub.counter("cts_jobs_failed_total"),
            running: hub.gauge("cts_jobs_running"),
            stage_hists,
        }
    }

    fn record_finish(&self, outcome: &Result<JobOutcome>) {
        match outcome {
            Ok(o) => {
                self.completed.inc();
                let w = &o.wall.max;
                for (name, hist) in &self.stage_hists {
                    let d = match *name {
                        crate::stage::stages::CODEGEN => w.codegen,
                        crate::stage::stages::MAP => w.map,
                        crate::stage::stages::PACK_ENCODE => w.pack_encode,
                        crate::stage::stages::SHUFFLE => w.shuffle,
                        crate::stage::stages::UNPACK_DECODE => w.unpack_decode,
                        _ => w.reduce,
                    };
                    if !d.is_zero() {
                        hist.record(d.as_nanos() as u64);
                    }
                }
            }
            Err(_) => self.failed.inc(),
        }
    }
}

struct Submission {
    id: u32,
    run: BoxedJob,
}

struct JobEntry {
    status: JobStatus,
    outcome: Option<Result<JobOutcome>>,
}

struct Shared {
    jobs: Mutex<HashMap<u32, JobEntry>>,
    cv: Condvar,
}

impl Shared {
    fn set_status(&self, id: u32, status: JobStatus) {
        if let Some(entry) = self.jobs.lock().get_mut(&id) {
            entry.status = status;
        }
        self.cv.notify_all();
    }

    fn finish(&self, id: u32, outcome: Result<JobOutcome>) {
        let mut jobs = self.jobs.lock();
        if let Some(entry) = jobs.get_mut(&id) {
            entry.status = match &outcome {
                Ok(_) => JobStatus::Done,
                Err(e) => JobStatus::Failed(e.to_string()),
            };
            entry.outcome = Some(outcome);
        }
        drop(jobs);
        self.cv.notify_all();
    }
}

/// A submitted job's ticket: poll its [`status`](JobHandle::status) or
/// block in [`wait`](JobHandle::wait) for the outcome. Dropping the
/// handle does not cancel the job.
pub struct JobHandle {
    id: u32,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).finish()
    }
}

impl JobHandle {
    /// The job's runtime-unique id (also its trace id).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The job's current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.shared
            .jobs
            .lock()
            .get(&self.id)
            .map(|e| e.status.clone())
            .expect("submitted job has an entry")
    }

    /// Blocks until the job finishes and returns its outcome.
    pub fn wait(self) -> Result<JobOutcome> {
        let mut jobs = self.shared.jobs.lock();
        loop {
            if let Some(outcome) = jobs
                .get_mut(&self.id)
                .expect("submitted job has an entry")
                .outcome
                .take()
            {
                return outcome;
            }
            self.shared.cv.wait(&mut jobs);
        }
    }
}

/// The resident multi-tenant runtime (see the module docs).
pub struct JobRuntime {
    fabric: Arc<SharedFabric>,
    queue: Arc<AdmissionQueue<Submission>>,
    shared: Arc<Shared>,
    budget: Arc<Budget>,
    metrics: Arc<RuntimeMetrics>,
    next_id: AtomicU32,
    dispatchers: Vec<JoinHandle<()>>,
}

impl JobRuntime {
    /// Builds the fabric and starts `max_concurrent` dispatcher threads.
    ///
    /// # Errors
    /// `BadConfig` for an out-of-range configuration; fabric bring-up
    /// failures propagate.
    pub fn start(cfg: RuntimeConfig) -> Result<JobRuntime> {
        if cfg.max_concurrent == 0 || cfg.max_concurrent > usize::from(cts_net::Tag::MAX_JOB_SLOT) {
            return Err(EngineError::BadConfig {
                what: format!(
                    "max_concurrent {} outside 1..={}",
                    cfg.max_concurrent,
                    cts_net::Tag::MAX_JOB_SLOT
                ),
            });
        }
        if cfg.queue_capacity == 0 {
            return Err(EngineError::BadConfig {
                what: "queue_capacity must be >= 1".into(),
            });
        }
        let fabric = Arc::new(SharedFabric::build(&cfg.template.cluster)?);
        let pool_threads = if cfg.pool_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.pool_threads
        };
        let budget = Arc::new(Budget::new(pool_threads));
        // Observability: every runtime instrument registers on the
        // fabric's hub, so one Prometheus render (or STATS frame) covers
        // admission, execution, and transport in a single snapshot.
        let hub = Arc::clone(fabric.metrics());
        let metrics = Arc::new(RuntimeMetrics::register(&hub));
        hub.gauge("cts_admission_queue_capacity")
            .set(cfg.queue_capacity as i64);
        budget.set_wait_histogram(hub.histogram_scaled("cts_worker_lease_wait_seconds", 1e-9));
        let queue: Arc<AdmissionQueue<Submission>> =
            Arc::new(AdmissionQueue::new(cfg.queue_capacity).with_metrics(
                hub.gauge("cts_admission_queue_depth"),
                hub.counter("cts_jobs_refused_total"),
            ));
        let shared = Arc::new(Shared {
            jobs: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        });
        // Exclusive mode: the single dispatcher keeps slot 0, so one-shot
        // semantics (full tag space, recovery) survive residency.
        let exclusive = cfg.max_concurrent == 1;
        let slots = Arc::new(
            SlotPool::new(cfg.max_concurrent.max(1) as u8)
                .with_gauge(hub.gauge("cts_slots_in_use")),
        );

        let mut job_template = cfg.template.clone();
        job_template.yield_slices = cfg.yield_slices;
        job_template.budget = Some(Arc::clone(&budget));

        let dispatchers = (0..cfg.max_concurrent)
            .map(|_| {
                let fabric = Arc::clone(&fabric);
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                let slots = Arc::clone(&slots);
                let metrics = Arc::clone(&metrics);
                let template = job_template.clone();
                std::thread::spawn(move || {
                    while let Some(sub) = queue.dequeue() {
                        shared.set_status(sub.id, JobStatus::Running);
                        metrics.running.add(1);
                        let slot = if exclusive { 0 } else { slots.acquire() };
                        let ctx = JobContext {
                            fabric: &fabric,
                            binding: JobBinding { slot, id: sub.id },
                            cfg: template.clone(),
                        };
                        // A panicking job takes the fabric down with it
                        // (SharedFabric policy); keep the dispatcher alive
                        // so queued jobs fail with errors, not a hang.
                        let outcome = catch_unwind(AssertUnwindSafe(|| (sub.run)(&ctx)))
                            .unwrap_or_else(|payload| {
                                let what = payload
                                    .downcast_ref::<&str>()
                                    .map(|s| (*s).to_string())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "job panicked".into());
                                Err(EngineError::Protocol {
                                    what: format!("job panicked: {what}"),
                                })
                            });
                        if !exclusive {
                            slots.release(slot);
                        }
                        metrics.running.add(-1);
                        metrics.record_finish(&outcome);
                        shared.finish(sub.id, outcome);
                    }
                })
            })
            .collect();

        Ok(JobRuntime {
            fabric,
            queue,
            shared,
            budget,
            metrics,
            next_id: AtomicU32::new(1),
            dispatchers,
        })
    }

    /// Convenience: a resident runtime around `template` with the default
    /// [`RuntimeConfig`] knobs.
    pub fn with_template(template: EngineConfig) -> Result<JobRuntime> {
        JobRuntime::start(RuntimeConfig::new(template))
    }

    /// Submits a job. `f` runs on a dispatcher thread with this job's
    /// [`JobContext`]; returns immediately with a [`JobHandle`].
    ///
    /// # Errors
    /// [`EngineError::Busy`] when the bounded queue is full or the
    /// runtime is shutting down.
    pub fn submit<F>(&self, f: F) -> Result<JobHandle>
    where
        F: FnOnce(&JobContext<'_>) -> Result<JobOutcome> + Send + 'static,
    {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared.jobs.lock().insert(
            id,
            JobEntry {
                status: JobStatus::Queued,
                outcome: None,
            },
        );
        let sub = Submission {
            id,
            run: Box::new(f),
        };
        if let Err(e) = self.queue.try_enqueue(sub) {
            self.shared.jobs.lock().remove(&id);
            return Err(e.into());
        }
        self.metrics.submitted.inc();
        Ok(JobHandle {
            id,
            shared: Arc::clone(&self.shared),
        })
    }

    /// The job's current status, if the id is known.
    pub fn status(&self, id: u32) -> Option<JobStatus> {
        self.shared.jobs.lock().get(&id).map(|e| e.status.clone())
    }

    /// Takes a finished job's outcome without blocking. `None` if the id
    /// is unknown, the job is still in flight, or the outcome was already
    /// taken.
    pub fn take_outcome(&self, id: u32) -> Option<Result<JobOutcome>> {
        self.shared.jobs.lock().get_mut(&id)?.outcome.take()
    }

    /// Blocks until job `id` finishes and returns its outcome.
    ///
    /// # Errors
    /// `Protocol` for an unknown id (or an outcome already taken).
    pub fn wait(&self, id: u32) -> Result<JobOutcome> {
        let mut jobs = self.shared.jobs.lock();
        loop {
            let entry = jobs.get_mut(&id).ok_or_else(|| EngineError::Protocol {
                what: format!("unknown job id {id}"),
            })?;
            if let Some(outcome) = entry.outcome.take() {
                return outcome;
            }
            if entry.status.is_terminal() {
                return Err(EngineError::Protocol {
                    what: format!("job {id}'s outcome was already taken"),
                });
            }
            self.shared.cv.wait(&mut jobs);
        }
    }

    /// Current admission-queue depth (jobs admitted, not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Every known job with its current status, ascending by id (the
    /// `cts stats` table's row source).
    pub fn job_statuses(&self) -> Vec<(u32, JobStatus)> {
        let mut rows: Vec<(u32, JobStatus)> = self
            .shared
            .jobs
            .lock()
            .iter()
            .map(|(id, e)| (*id, e.status.clone()))
            .collect();
        rows.sort_unstable_by_key(|(id, _)| *id);
        rows
    }

    /// The resident fabric (e.g. for all-jobs trace snapshots).
    pub fn fabric(&self) -> &SharedFabric {
        &self.fabric
    }

    /// The runtime-owned thread-lease budget all jobs draw from.
    pub fn budget(&self) -> &Arc<Budget> {
        &self.budget
    }

    /// Stops admission, drains queued jobs, and joins the dispatchers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for JobRuntime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::run_sequential;
    use crate::wordcount::WordCount;
    use crate::workload::InputFormat;

    struct ByteSort;

    impl Workload for ByteSort {
        fn name(&self) -> &str {
            "bytesort"
        }
        fn format(&self) -> InputFormat {
            InputFormat::FixedWidth(1)
        }
        fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
            let mut out = vec![Vec::new(); num_partitions];
            for &b in file {
                out[b as usize % num_partitions].push(b);
            }
            out
        }
        fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
            let mut v = data.to_vec();
            v.sort_unstable();
            v
        }
    }

    fn sample_input(len: usize) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| ((i * 149 + 11) % 239) as u8)
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn concurrent_jobs_match_one_shot_runs() {
        let runtime =
            JobRuntime::start(RuntimeConfig::new(EngineConfig::local(4, 2)).with_max_concurrent(4))
                .unwrap();
        let inputs: Vec<Bytes> = (0..6).map(|i| sample_input(600 + i * 37)).collect();
        let handles: Vec<JobHandle> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                let input = input.clone();
                runtime
                    .submit(move |ctx| {
                        if i % 2 == 0 {
                            ctx.run_coded(&ByteSort, input)
                        } else {
                            ctx.run_uncoded(&ByteSort, input)
                        }
                    })
                    .unwrap()
            })
            .collect();
        for (i, (handle, input)) in handles.into_iter().zip(&inputs).enumerate() {
            let outcome = handle.wait().unwrap();
            assert_eq!(
                outcome.outputs,
                run_sequential(&ByteSort, input, 4),
                "job {i}"
            );
        }
        runtime.shutdown();
    }

    #[test]
    fn admission_queue_refuses_when_full() {
        // One dispatcher, tiny queue: the first job occupies the
        // dispatcher, the second fills the queue, the third must bounce.
        let runtime = JobRuntime::start(
            RuntimeConfig::new(EngineConfig::local(2, 1))
                .with_max_concurrent(1)
                .with_queue_capacity(1),
        )
        .unwrap();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let first = runtime
            .submit(move |ctx| {
                let (lock, cv) = &*g;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                drop(open);
                ctx.run_uncoded(&ByteSort, sample_input(64))
            })
            .unwrap();
        // Wait until the first job actually holds the dispatcher.
        while runtime.status(first.id()) != Some(JobStatus::Running) {
            std::thread::yield_now();
        }
        let second = runtime
            .submit(|ctx| ctx.run_uncoded(&ByteSort, sample_input(64)))
            .unwrap();
        let refused = runtime.submit(|ctx| ctx.run_uncoded(&ByteSort, sample_input(64)));
        assert!(
            matches!(refused, Err(EngineError::Busy { .. })),
            "{refused:?}"
        );
        let (lock, cv) = &*gate;
        *lock.lock() = true;
        cv.notify_all();
        first.wait().unwrap();
        second.wait().unwrap();
        runtime.shutdown();
    }

    #[test]
    fn mixed_workloads_share_one_runtime() {
        let runtime =
            JobRuntime::start(RuntimeConfig::new(EngineConfig::local(3, 2)).with_max_concurrent(3))
                .unwrap();
        let text = Bytes::from_static(b"to be or not to be\nthat is the question\n");
        let bytes = sample_input(500);
        let wc = {
            let text = text.clone();
            runtime
                .submit(move |ctx| ctx.run_coded(&WordCount, text))
                .unwrap()
        };
        let sort = {
            let bytes = bytes.clone();
            runtime
                .submit(move |ctx| ctx.run_uncoded(&ByteSort, bytes))
                .unwrap()
        };
        let wc_out = wc.wait().unwrap();
        let sort_out = sort.wait().unwrap();
        assert_eq!(wc_out.outputs, run_sequential(&WordCount, &text, 3));
        assert_eq!(sort_out.outputs, run_sequential(&ByteSort, &bytes, 3));
        // Per-job traces stayed separate: each outcome's trace carries
        // only its own job id.
        assert_eq!(wc_out.trace.jobs().len(), 1);
        assert_eq!(sort_out.trace.jobs().len(), 1);
        runtime.shutdown();
    }

    #[test]
    fn runtime_rejects_bad_shapes() {
        assert!(matches!(
            JobRuntime::start(RuntimeConfig::new(EngineConfig::local(2, 1)).with_max_concurrent(0)),
            Err(EngineError::BadConfig { .. })
        ));
        assert!(matches!(
            JobRuntime::start(RuntimeConfig::new(EngineConfig::local(2, 1)).with_queue_capacity(0)),
            Err(EngineError::BadConfig { .. })
        ));
    }

    #[test]
    fn shared_fabric_jobs_cannot_use_speculative_recovery() {
        use crate::stage::RecoveryMode;
        let template = EngineConfig::local(4, 2)
            .with_field(cts_core::field::FieldKind::Gf256)
            .decode_quorum()
            .with_recovery(RecoveryMode::Speculative);
        let runtime =
            JobRuntime::start(RuntimeConfig::new(template).with_max_concurrent(2)).unwrap();
        let err = runtime
            .submit(|ctx| ctx.run_coded(&ByteSort, sample_input(200)))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, EngineError::BadConfig { .. }), "{err}");
        runtime.shutdown();
    }
}
