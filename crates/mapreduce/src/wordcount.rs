//! WordCount — the canonical shuffle-heavy MapReduce workload beyond
//! sorting (paper §VI: "apply the coding concept to develop coded versions
//! of many other distributed computing applications").
//!
//! Intermediate format: a flat sequence of entries
//! `[len: u16 LE][word bytes][count: u32 LE]`. Entries from different files
//! concatenate freely; the reducer aggregates counts per word and emits
//! `word<TAB>count\n` lines sorted by word — order-insensitive as the
//! engines require.

use std::collections::HashMap;

use crate::workload::{InputFormat, Workload};

/// The WordCount workload: counts whitespace-separated words.
#[derive(Clone, Copy, Debug, Default)]
pub struct WordCount;

/// FNV-1a, the partitioning hash (stable across platforms).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn push_entry(buf: &mut Vec<u8>, word: &[u8], count: u32) {
    debug_assert!(word.len() <= u16::MAX as usize);
    buf.extend_from_slice(&(word.len() as u16).to_le_bytes());
    buf.extend_from_slice(word);
    buf.extend_from_slice(&count.to_le_bytes());
}

fn parse_entries(mut data: &[u8]) -> impl Iterator<Item = (&[u8], u32)> {
    std::iter::from_fn(move || {
        if data.len() < 2 {
            return None;
        }
        let len = u16::from_le_bytes(data[..2].try_into().unwrap()) as usize;
        if data.len() < 2 + len + 4 {
            return None;
        }
        let word = &data[2..2 + len];
        let count = u32::from_le_bytes(data[2 + len..2 + len + 4].try_into().unwrap());
        data = &data[2 + len + 4..];
        Some((word, count))
    })
}

impl Workload for WordCount {
    fn name(&self) -> &str {
        "wordcount"
    }

    fn format(&self) -> InputFormat {
        InputFormat::Lines
    }

    fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
        // Pre-aggregate within the file (a combiner) before partitioning.
        let mut counts: HashMap<&[u8], u32> = HashMap::new();
        for word in file
            .split(|&b| b.is_ascii_whitespace())
            .filter(|w| !w.is_empty())
        {
            *counts.entry(word).or_insert(0) += 1;
        }
        let mut out = vec![Vec::new(); num_partitions];
        let mut sorted: Vec<(&[u8], u32)> = counts.into_iter().collect();
        sorted.sort_unstable(); // deterministic intermediate bytes
        for (word, count) in sorted {
            let p = (fnv1a(word) % num_partitions as u64) as usize;
            push_entry(&mut out[p], word, count);
        }
        out
    }

    fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
        let mut totals: HashMap<Vec<u8>, u64> = HashMap::new();
        for (word, count) in parse_entries(data) {
            *totals.entry(word.to_vec()).or_insert(0) += count as u64;
        }
        let mut sorted: Vec<(Vec<u8>, u64)> = totals.into_iter().collect();
        sorted.sort_unstable();
        let mut out = Vec::new();
        for (word, count) in sorted {
            out.extend_from_slice(&word);
            out.push(b'\t');
            out.extend_from_slice(count.to_string().as_bytes());
            out.push(b'\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::run_sequential;
    use bytes::Bytes;

    #[test]
    fn counts_simple_text() {
        let input = Bytes::from_static(b"the cat and the hat\nthe end\n");
        let outputs = run_sequential(&WordCount, &input, 1);
        let text = String::from_utf8(outputs[0].clone()).unwrap();
        assert!(text.contains("the\t3"));
        assert!(text.contains("cat\t1"));
        assert!(text.contains("end\t1"));
    }

    #[test]
    fn partitioning_is_by_word_hash() {
        let input = Bytes::from_static(b"alpha beta alpha gamma\n");
        let parts = WordCount.map_file(&input, 4);
        // Every word's entries land in exactly one partition.
        for word in ["alpha", "beta", "gamma"] {
            let p = (fnv1a(word.as_bytes()) % 4) as usize;
            let found = parse_entries(&parts[p]).any(|(w, _)| w == word.as_bytes());
            assert!(found, "{word} missing from its partition");
        }
    }

    #[test]
    fn combiner_preaggregates() {
        let input = Bytes::from_static(b"x x x x x\n");
        let parts = WordCount.map_file(&input, 1);
        let entries: Vec<(&[u8], u32)> = parse_entries(&parts[0]).collect();
        assert_eq!(entries, vec![(b"x".as_ref(), 5)]);
    }

    #[test]
    fn reduce_merges_across_files() {
        let a = WordCount.map_file(b"dog dog", 1);
        let b = WordCount.map_file(b"dog cat", 1);
        let mut merged = a[0].clone();
        merged.extend_from_slice(&b[0]);
        let out = WordCount.reduce(0, &merged);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("dog\t3"));
        assert!(text.contains("cat\t1"));
    }

    #[test]
    fn empty_input_is_empty_output() {
        let parts = WordCount.map_file(b"", 3);
        assert!(parts.iter().all(|p| p.is_empty()));
        assert!(WordCount.reduce(0, &[]).is_empty());
    }

    #[test]
    fn entry_roundtrip_handles_long_words() {
        let word = vec![b'w'; 300];
        let mut buf = Vec::new();
        push_entry(&mut buf, &word, 42);
        let parsed: Vec<(&[u8], u32)> = parse_entries(&buf).collect();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, &word[..]);
        assert_eq!(parsed[0].1, 42);
    }
}
