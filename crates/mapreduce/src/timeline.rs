//! Chrome trace-event export of a job's stage spans.
//!
//! [`chrome_trace`] turns a [`JobOutcome`]'s recorded
//! [`SpanLog`](cts_net::span::SpanLog) into the Trace Event Format JSON
//! that `chrome://tracing` and Perfetto load directly: one complete
//! (`"ph": "X"`) event per rank per stage, `pid` = job id, `tid` = rank.
//! Loading the file reproduces the paper's Fig. 9 stage breakdown for
//! that job — each rank's Map / Encode / Shuffle / Decode / Reduce
//! bracket laid out on a common timebase.
//!
//! Timestamps are microseconds (the format's unit) on the span
//! collector's clock; durations under 1 µs round up to 1 so hairline
//! stages stay visible.

use serde::json::Value;

use crate::uncoded::JobOutcome;

/// Microseconds, rounding a nonzero duration up to at least 1.
fn us(ns: u64) -> u64 {
    if ns == 0 {
        0
    } else {
        (ns / 1_000).max(1)
    }
}

/// Renders `outcome`'s spans as Chrome trace-event JSON for `job_id`.
///
/// The output is a complete JSON document (`{"traceEvents": [...]}`)
/// ready to write to disk and load into a trace viewer. Spans from other
/// jobs that may share the log are filtered out.
pub fn chrome_trace(outcome: &JobOutcome, job_id: u32) -> String {
    let log = outcome.spans.for_job(job_id);
    let events: Vec<Value> = log
        .spans
        .iter()
        .map(|s| {
            Value::object([
                ("name", Value::Str(log.stage_name(s.stage).to_string())),
                ("cat", Value::Str("stage".to_string())),
                ("ph", Value::Str("X".to_string())),
                ("ts", Value::UInt(us(s.start_ns))),
                ("dur", Value::UInt(us(s.dur_ns()))),
                ("pid", Value::UInt(u64::from(s.job))),
                ("tid", Value::UInt(u64::from(s.rank))),
            ])
        })
        .collect();
    Value::object([
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ])
    .render()
}

/// Per-stage wall totals (ns) of the spans behind [`chrome_trace`], in
/// first-appearance order — the cross-check that the exported timeline
/// and the engine's own stage accounting agree.
pub fn stage_totals_ns(outcome: &JobOutcome, job_id: u32) -> Vec<(String, u64)> {
    let log = outcome.spans.for_job(job_id);
    log.stages_in_order()
        .iter()
        .map(|name| ((*name).to_string(), log.stage_wall_ns(name)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{stages, EngineConfig};
    use crate::uncoded::run_uncoded;
    use crate::workload::{InputFormat, Workload};
    use bytes::Bytes;

    struct ByteSort;

    impl Workload for ByteSort {
        fn name(&self) -> &str {
            "bytesort"
        }
        fn format(&self) -> InputFormat {
            InputFormat::FixedWidth(1)
        }
        fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
            let mut out = vec![Vec::new(); num_partitions];
            for &b in file {
                out[b as usize % num_partitions].push(b);
            }
            out
        }
        fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
            let mut v = data.to_vec();
            v.sort_unstable();
            v
        }
    }

    #[test]
    fn chrome_trace_covers_every_rank_and_stage() {
        let input = Bytes::from((0..500).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
        let outcome = run_uncoded(&ByteSort, input, &EngineConfig::local(3, 1)).unwrap();
        let json = chrome_trace(&outcome, 0);
        assert!(json.starts_with("{\"traceEvents\":["));
        // Every uncoded stage appears as an event name.
        for stage in [
            stages::MAP,
            stages::PACK_ENCODE,
            stages::SHUFFLE,
            stages::UNPACK_DECODE,
            stages::REDUCE,
        ] {
            assert!(json.contains(&format!("\"name\":\"{stage}\"")), "{stage}");
        }
        // Three ranks → each stage occurs three times.
        assert_eq!(json.matches("\"name\":\"Map\"").count(), 3);
        // Totals line up with the span log's own accounting.
        let totals = stage_totals_ns(&outcome, 0);
        assert_eq!(totals.len(), 5);
        assert!(totals.iter().all(|(_, ns)| *ns > 0));
    }
}
