//! # cts-mapreduce — uncoded and coded MapReduce engines
//!
//! This crate runs real MapReduce jobs over the `cts-net` substrate, in
//! both of the paper's flavors:
//!
//! * [`uncoded::run_uncoded`] — conventional TeraSort-style execution
//!   (paper §III): Map → Pack → serial-unicast Shuffle → Unpack → Reduce;
//! * [`coded::run_coded`] — CodedTeraSort-style execution (paper §IV):
//!   CodeGen → redundant Map → Encode → serial-multicast Shuffle →
//!   Decode → Reduce, built on the `cts-core` coding layer.
//!
//! Both engines are generic over a byte-oriented [`workload::Workload`] —
//! TeraSort lives in `cts-terasort`; [`wordcount::WordCount`],
//! [`grep::Grep`] and [`invindex::InvertedIndex`] here realize the paper's
//! §VI "beyond sorting" direction. Engines return a
//! [`uncoded::JobOutcome`]: per-partition outputs, a transfer trace, wall
//! times, and the [`cts_netsim::RunStats`] the performance model consumes.
//!
//! ```
//! use bytes::Bytes;
//! use cts_mapreduce::stage::EngineConfig;
//! use cts_mapreduce::wordcount::WordCount;
//! use cts_mapreduce::{run_coded, run_uncoded};
//!
//! let input = Bytes::from_static(b"to be or not to be\nthat is the question\n");
//! let uncoded = run_uncoded(&WordCount, input.clone(), &EngineConfig::local(3, 1)).unwrap();
//! let coded = run_coded(&WordCount, input, &EngineConfig::local(3, 2)).unwrap();
//! assert_eq!(uncoded.outputs, coded.outputs);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod coded;
pub mod error;
pub mod grep;
pub mod invindex;
pub mod pods;
pub mod recover;
pub mod runtime;
pub mod selfjoin;
pub mod stage;
pub mod timeline;
pub mod uncoded;
pub mod verify;
pub mod wordcount;
pub mod workload;

pub use coded::{run_coded, run_coded_on};
pub use error::{EngineError, JobReport, Result};
pub use pods::run_coded_pods;
pub use runtime::{JobContext, JobHandle, JobRuntime, JobStatus, RuntimeConfig};
pub use stage::{EngineConfig, NodeWall, RecoveryMode, WallTimes};
pub use timeline::{chrome_trace, stage_totals_ns};
pub use uncoded::{run_uncoded, run_uncoded_on, JobOutcome};
pub use verify::{diff_outputs, run_sequential};
pub use workload::{InputFormat, Workload};
