//! Pod-partitioned coded execution — a working implementation of the
//! paper's §VI *scalable coding* direction.
//!
//! The `K` nodes split into `K/g` disjoint pods of `g` nodes. Each pod
//! owns `1/(K/g)` of the input, placed redundantly *within the pod* as
//! `C(g, r)` files on `r`-subsets of pod members. Shuffling then has two
//! parts:
//!
//! 1. **in-pod coded multicast** — the standard CodedTeraSort exchange,
//!    run independently per pod over pod-local multicast groups (total
//!    groups: `(K/g)·C(g, r+1)` instead of `C(K, r+1)`);
//! 2. **cross-pod uncoded unicast** — intermediate values destined to
//!    nodes outside the pod carry no exploitable side information, so the
//!    file's lowest-ranked holder unicasts them directly.
//!
//! Communication load: `(g/K)(1/r)(1−r/g) + (1−g/K)`
//! ([`cts_core::theory::pod_comm_load`]); CodeGen shrinks by up to
//! `C(K, r+1) / ((K/g)·C(g, r+1))` — the tradeoff the
//! `ablation_scalable_coding` bench quantifies.

use bytes::{BufMut, Bytes, BytesMut};
use cts_core::decode::DecodePipeline;
use cts_core::encode::Encoder;
use cts_core::groups::MulticastGroups;
use cts_core::intermediate::MapOutputStore;
use cts_core::packet::CodedPacket;
use cts_core::placement::{FileId, PlacementPlan};
use cts_core::subset::NodeSet;
use cts_net::cluster::run_spmd_with_inputs;
use cts_net::message::Tag;
use cts_netsim::stats::{NodeStats, RunStats};

use crate::error::{EngineError, Result};
use crate::stage::{stages, EngineConfig, NodeWall, StageTimer, WallTimes};
use crate::uncoded::JobOutcome;
use crate::workload::Workload;

/// Runs `workload` with pod-partitioned coding: pods of `pod_size` nodes,
/// redundancy `cfg.r` within each pod.
///
/// The pod engine always uses barrier-on-all decode regardless of
/// `cfg.decode`: in-pod groups are small and rack-local, so the quorum
/// machinery's MDS payload inflation (`total/(r−1)` instead of
/// `total/r` per packet) buys nothing there — stragglers are a
/// cross-rack phenomenon, and the flat engine's quorum mode covers it.
///
/// # Errors
/// `BadConfig` unless `pod_size` divides `cfg.k` and `cfg.r < pod_size`.
pub fn run_coded_pods<W: Workload>(
    workload: &W,
    input: Bytes,
    cfg: &EngineConfig,
    pod_size: usize,
) -> Result<JobOutcome> {
    let (k, r, g) = (cfg.k, cfg.r, pod_size);
    if g == 0 || k == 0 || !k.is_multiple_of(g) {
        return Err(EngineError::BadConfig {
            what: format!("pod size {g} must divide K = {k}"),
        });
    }
    if r == 0 || r >= g {
        return Err(EngineError::BadConfig {
            what: format!("need 1 <= r < pod size, got r = {r}, g = {g}"),
        });
    }
    if cfg.recovery != crate::stage::RecoveryMode::Off {
        // The pod engine's cross-pod exchange has no health layer yet;
        // recovery is a flat coded-engine feature for now.
        return Err(EngineError::BadConfig {
            what: "the pod-scoped engine does not support failure recovery; \
                   use the flat coded engine"
                .into(),
        });
    }
    let num_pods = k / g;
    let local_plan = PlacementPlan::new(g, r).expect("validated");
    let local_groups = MulticastGroups::new(g, r).expect("validated");
    if num_pods as u64 * local_groups.num_groups() >= 1 << 20 {
        return Err(EngineError::BadConfig {
            what: "too many pod groups for the tag space".into(),
        });
    }

    // Coordinator: pod p owns input slice p, split into C(g, r) files.
    let pod_slices = workload.format().split(&input, num_pods);
    let files_per_pod = local_plan.num_files() as usize;
    let pod_files: Vec<Vec<Bytes>> = pod_slices
        .iter()
        .map(|slice| workload.format().split(slice, files_per_pod))
        .collect();
    // Node n (pod p, local l) receives its local files.
    let per_node: Vec<Vec<(FileId, Bytes)>> = (0..k)
        .map(|node| {
            let (pod, local) = (node / g, node % g);
            local_plan
                .files_of_node(local)
                .map(|fid| (fid, pod_files[pod][fid.0 as usize].clone()))
                .collect()
        })
        .collect();

    let run = run_spmd_with_inputs(&cfg.cluster, per_node, |comm, my_files| {
        pod_node_main(workload, comm, my_files, cfg, g)
    })?;

    let mut outputs = Vec::with_capacity(k);
    let mut stats = RunStats::new(k, r);
    stats.num_groups = num_pods as u64 * local_groups.num_groups();
    let mut walls = Vec::with_capacity(k);
    for (rank, result) in run.results.into_iter().enumerate() {
        let (output, node_stats, wall) = result?;
        outputs.push(output);
        stats.per_node[rank] = node_stats;
        walls.push(wall);
    }
    Ok(JobOutcome {
        outputs,
        stats,
        trace: run.trace,
        spans: run.spans,
        wall: WallTimes::aggregate(&walls),
    })
}

/// Fixed tag for cross-pod unicast traffic (FIFO per channel keeps the
/// stream ordered; receivers know the exact message counts).
fn cross_pod_tag() -> Tag {
    Tag::new(Tag::APP, 0x00C0DE)
}

fn pod_bcast_tag(pod: usize, local_gid: u64, groups_per_pod: u64) -> Tag {
    Tag::new(
        Tag::BCAST,
        (pod as u64 * groups_per_pod + local_gid) as u32 & 0x00FF_FFFF,
    )
}

/// Global node set of a pod-local set.
fn globalize(local: NodeSet, pod: usize, g: usize) -> NodeSet {
    NodeSet::from_bits(local.bits() << (pod * g))
}

type NodeResult = Result<(Vec<u8>, NodeStats, NodeWall)>;

fn pod_node_main<W: Workload>(
    workload: &W,
    comm: &cts_net::Communicator,
    my_files: Vec<(FileId, Bytes)>,
    cfg: &EngineConfig,
    g: usize,
) -> NodeResult {
    let k = comm.world_size();
    let r = cfg.r;
    let me = comm.rank();
    let my_pod = me / g;
    let my_local = me % g;
    let mut stats = NodeStats::default();
    let mut wall = NodeWall::default();

    // ---- CodeGen: pod-local plan + groups -------------------------------
    comm.set_stage(stages::CODEGEN);
    let timer = StageTimer::start();
    let plan = PlacementPlan::new(g, r).expect("validated");
    let groups = MulticastGroups::new(g, r).expect("validated");
    let groups_per_pod = groups.num_groups();
    let schedule: Vec<(u64, NodeSet, Vec<usize>)> = groups
        .iter_groups()
        .map(|(gid, m)| {
            let global = globalize(m, my_pod, g);
            (gid.0, global, global.to_vec())
        })
        .collect();
    wall.codegen = timer.stop();
    comm.barrier()?;

    // ---- Map -------------------------------------------------------------
    // Keep rule, pod flavor:
    //  * in-pod target t: standard rule on the local plan;
    //  * out-pod target t: kept only by the file's lowest-ranked holder
    //    (the designated cross-pod sender).
    comm.set_stage(stages::MAP);
    let timer = StageTimer::start();
    let mut store = MapOutputStore::new(); // keyed by *global* file sets
    let mut cross_outbox: Vec<(u64, usize, Bytes)> = Vec::new(); // (file bits, target, data)
    for (fid, data) in &my_files {
        let local_nodes = plan.nodes_of_file(*fid);
        let global_nodes = globalize(local_nodes, my_pod, g);
        let is_min_holder = global_nodes.min() == Some(me);
        stats.map_input_bytes += data.len() as u64;
        stats.files_mapped += 1;
        let intermediates = workload.map_file(data, k);
        for (t, value) in intermediates.into_iter().enumerate() {
            if t / g == my_pod {
                if plan.keeps_intermediate(my_local, local_nodes, t % g) {
                    store.insert(t % g, global_nodes, Bytes::from(value));
                }
            } else if is_min_holder {
                cross_outbox.push((global_nodes.bits(), t, Bytes::from(value)));
            }
        }
    }
    wall.map = timer.stop();
    comm.barrier()?;

    // ---- Encode (in-pod packets) -----------------------------------------
    comm.set_stage(stages::PACK_ENCODE);
    let timer = StageTimer::start();
    stats.pack_bytes = store.total_bytes()
        + cross_outbox
            .iter()
            .map(|(_, _, d)| d.len() as u64)
            .sum::<u64>();
    // The encoder works over local ids; adapt the store view.
    let local_store = LocalView {
        inner: &store,
        pod: my_pod,
        g,
    };
    let encoder = Encoder::with_field(g, r, my_local, cfg.field).expect("validated");
    let mut my_packets: std::collections::HashMap<u64, (Bytes, u64)> =
        std::collections::HashMap::new();
    let mut scratch = cts_core::encode::EncodeScratch::new();
    let mut wire_buf: Vec<u8> = Vec::new();
    for (gid, m) in groups.groups_of_node(my_local) {
        encoder.encode_group_into(m, &local_store, &mut scratch)?;
        wire_buf.clear();
        CodedPacket::write_wire(
            m,
            my_local,
            &scratch.seg_lens,
            &scratch.payload,
            &mut wire_buf,
        );
        let scalable = scratch.seg_len_sum() / r as u64;
        let wire = Bytes::copy_from_slice(&wire_buf);
        let overhead = wire.len() as u64 - scalable.min(wire.len() as u64);
        my_packets.insert(gid.0, (wire, overhead));
    }
    // Frame the cross-pod messages: [file bits u64][payload].
    let mut framed_cross: Vec<(usize, Bytes)> = Vec::with_capacity(cross_outbox.len());
    cross_outbox.sort_by_key(|(bits, t, _)| (*bits, *t));
    for (bits, t, data) in cross_outbox {
        let mut buf = BytesMut::with_capacity(8 + data.len());
        buf.put_u64_le(bits);
        buf.put_slice(&data);
        framed_cross.push((t, buf.freeze()));
    }
    wall.pack_encode = timer.stop();
    comm.barrier()?;

    // ---- Shuffle: in-pod serial multicast, then cross-pod serial unicast --
    comm.set_stage(stages::SHUFFLE);
    let timer = StageTimer::start();
    let mut received_packets: Vec<Bytes> = Vec::new();
    for (gid, members, member_list) in &schedule {
        let tag = pod_bcast_tag(my_pod, *gid, groups_per_pod);
        if !members.contains(me) {
            continue;
        }
        for &sender in member_list {
            if sender == me {
                let (payload, header) = my_packets.remove(gid).expect("one packet per owned group");
                stats.sent_bytes += payload.len() as u64;
                comm.multicast_with_overhead(me, member_list, tag, Some(payload), header)?;
            } else {
                let payload = comm.multicast(sender, member_list, tag, None)?;
                stats.recv_bytes += payload.len() as u64;
                received_packets.push(payload);
            }
        }
    }
    comm.barrier()?;

    // Cross-pod phase: serial by sender rank (Fig. 9(a) style). Every node
    // computes every sender's outbound counts so receivers know how many
    // messages to expect.
    let min_holder_files_per_node = |node: usize| -> u64 {
        let local = node % g;
        plan.files_of_node(local)
            .filter(|fid| plan.nodes_of_file(*fid).min() == Some(local))
            .count() as u64
    };
    let mut received_cross: Vec<Bytes> = Vec::new();
    for sender in 0..k {
        if sender == me {
            for (t, payload) in framed_cross.drain(..) {
                stats.sent_bytes += payload.len() as u64;
                comm.send(t, cross_pod_tag(), payload)?;
            }
        } else if sender / g != my_pod {
            // Each out-pod min-holder sends one message per (file, me).
            for _ in 0..min_holder_files_per_node(sender) {
                let payload = comm.recv(sender, cross_pod_tag())?;
                stats.recv_bytes += payload.len() as u64;
                received_cross.push(payload);
            }
        }
        if cfg.strict_serial_shuffle {
            comm.barrier()?;
        }
    }
    comm.barrier()?;
    wall.shuffle = timer.stop();

    // ---- Decode -----------------------------------------------------------
    comm.set_stage(stages::UNPACK_DECODE);
    let timer = StageTimer::start();
    let mut pipeline = DecodePipeline::with_field(g, r, my_local, cfg.field).expect("validated");
    let mut packet = CodedPacket::empty();
    let mut recovered: Vec<(u64, Bytes)> = Vec::new(); // (global file bits, data)
    for raw in &received_packets {
        packet.read_wire(raw)?;
        stats.decode_work_bytes += packet.seg_lens.iter().map(|(_, l)| *l as u64).sum::<u64>();
        if let Some((local_file, data)) = pipeline.accept(&packet, &local_store)? {
            recovered.push((globalize(local_file, my_pod, g).bits(), Bytes::from(data)));
        }
    }
    if pipeline.in_flight() != 0 || recovered.len() as u64 != pipeline.expected_total() {
        return Err(EngineError::Protocol {
            what: format!(
                "pod node {me}: recovered {}/{} in-pod intermediates",
                recovered.len(),
                pipeline.expected_total()
            ),
        });
    }
    // Unframe the cross-pod messages.
    for raw in &received_cross {
        if raw.len() < 8 {
            return Err(EngineError::Protocol {
                what: "cross-pod frame shorter than its header".into(),
            });
        }
        stats.unpack_bytes += raw.len() as u64 - 8;
        let bits = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
        recovered.push((bits, raw.slice(8..)));
    }
    wall.unpack_decode = timer.stop();
    comm.barrier()?;

    // ---- Reduce -----------------------------------------------------------
    comm.set_stage(stages::REDUCE);
    let timer = StageTimer::start();
    let mut pieces: Vec<(u64, Bytes)> = store
        .take_for_target(my_local)
        .into_iter()
        .map(|(f, b)| (f.bits(), b))
        .collect();
    pieces.extend(recovered);
    pieces.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.len().cmp(&b.1.len())));
    let total: usize = pieces.iter().map(|(_, b)| b.len()).sum();
    let mut partition_data = Vec::with_capacity(total);
    for (_, b) in &pieces {
        partition_data.extend_from_slice(b);
    }
    stats.reduce_input_bytes = partition_data.len() as u64;
    let output = workload.reduce(me, &partition_data);
    wall.reduce = timer.stop();
    comm.barrier()?;

    Ok((output, stats, wall))
}

/// Adapter exposing the pod-global store under pod-local node ids, as the
/// encoder/decoder (which run on the local plan) expect.
struct LocalView<'a> {
    inner: &'a MapOutputStore,
    pod: usize,
    g: usize,
}

impl cts_core::intermediate::IntermediateSource for LocalView<'_> {
    fn intermediate(&self, target: usize, file: NodeSet) -> Option<&[u8]> {
        self.inner
            .intermediate(target, globalize(file, self.pod, self.g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uncoded::run_uncoded;
    use crate::workload::InputFormat;

    struct ByteSort;

    impl Workload for ByteSort {
        fn name(&self) -> &str {
            "bytesort"
        }
        fn format(&self) -> InputFormat {
            InputFormat::FixedWidth(1)
        }
        fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
            let mut out = vec![Vec::new(); num_partitions];
            for &b in file {
                out[b as usize % num_partitions].push(b);
            }
            out
        }
        fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
            let mut v = data.to_vec();
            v.sort_unstable();
            v
        }
    }

    fn sample_input(len: usize) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| ((i * 193 + 7) % 233) as u8)
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn pods_match_uncoded_output() {
        let input = sample_input(4_000);
        for (k, r, g) in [
            (4usize, 1usize, 2usize),
            (6, 2, 3),
            (8, 1, 4),
            (8, 3, 4),
            (9, 2, 3),
        ] {
            let pods =
                run_coded_pods(&ByteSort, input.clone(), &EngineConfig::local(k, r), g).unwrap();
            let unc = run_uncoded(&ByteSort, input.clone(), &EngineConfig::local(k, 1)).unwrap();
            assert_eq!(pods.outputs, unc.outputs, "k={k} r={r} g={g}");
        }
    }

    #[test]
    fn single_pod_equals_flat_coded() {
        // g = K degenerates... g must exceed r, and with one pod the
        // cross-pod phase is empty: identical to flat coded output.
        let input = sample_input(2_000);
        let pods = run_coded_pods(&ByteSort, input.clone(), &EngineConfig::local(5, 2), 5).unwrap();
        let flat = crate::coded::run_coded(&ByteSort, input, &EngineConfig::local(5, 2)).unwrap();
        assert_eq!(pods.outputs, flat.outputs);
        assert_eq!(pods.stats.num_groups, flat.stats.num_groups);
    }

    #[test]
    fn group_count_shrinks() {
        let input = sample_input(3_000);
        let pods = run_coded_pods(&ByteSort, input.clone(), &EngineConfig::local(8, 2), 4).unwrap();
        // 2 pods × C(4,3) = 8 groups, vs flat C(8,3) = 56.
        assert_eq!(pods.stats.num_groups, 8);
        let flat = crate::coded::run_coded(&ByteSort, input, &EngineConfig::local(8, 2)).unwrap();
        assert_eq!(flat.stats.num_groups, 56);
    }

    #[test]
    fn comm_load_matches_pod_theory() {
        let input = sample_input(120_000);
        let (k, r, g) = (8usize, 2usize, 4usize);
        let pods = run_coded_pods(&ByteSort, input.clone(), &EngineConfig::local(k, r), g).unwrap();
        let load = pods.stats.comm_load(input.len() as u64);
        let expected = cts_core::theory::pod_comm_load(r, k, g);
        assert!(
            (load - expected).abs() / expected < 0.15,
            "measured {load} vs theory {expected}"
        );
    }

    #[test]
    fn rejects_bad_pod_parameters() {
        let input = sample_input(100);
        assert!(run_coded_pods(&ByteSort, input.clone(), &EngineConfig::local(6, 2), 4).is_err());
        assert!(run_coded_pods(&ByteSort, input.clone(), &EngineConfig::local(6, 3), 3).is_err());
        assert!(run_coded_pods(&ByteSort, input, &EngineConfig::local(6, 0), 3).is_err());
    }

    #[test]
    fn strict_serial_matches() {
        let input = sample_input(2_000);
        let mut cfg = EngineConfig::local(6, 2);
        cfg.strict_serial_shuffle = true;
        let a = run_coded_pods(&ByteSort, input.clone(), &cfg, 3).unwrap();
        let b = run_coded_pods(&ByteSort, input, &EngineConfig::local(6, 2), 3).unwrap();
        assert_eq!(a.outputs, b.outputs);
    }
}
