//! The CodedTeraSort-style engine (paper §IV).
//!
//! Six stages, barrier-synchronized:
//!
//! 1. **CodeGen**: every node locally builds the placement, enumerates the
//!    `C(K, r+1)` multicast groups, and "initializes" them (the paper's
//!    `MPI_Comm_split`; our group communicators are member lists, so the
//!    real cost is enumeration — the EC2 cost is modeled).
//! 2. **Map**: each node hashes each of its `C(K-1, r-1)` files, keeping
//!    intermediates per the §IV-B rule.
//! 3. **Encode**: Algorithm 1 — one coded packet per group membership.
//! 4. **Multicast Shuffling**: serial multicast (Fig. 9(b)) — groups in
//!    global id order; within a group, members multicast in rank order over
//!    the configured [`ShuffleFabric`](cts_net::fabric::ShuffleFabric):
//!    true one-to-many sends by default, serial-unicast or fanout emulation
//!    for the ablation baselines.
//! 5. **Decode**: Algorithm 2 — received packets are cancelled against
//!    local intermediates and merged.
//! 6. **Reduce**: identical to the uncoded engine's.

use bytes::Bytes;
use cts_core::decode::{DecodeMode, DecodePipeline};
use cts_core::encode::{EncodeScratch, Encoder};
use cts_core::exec::WorkerPool;
use cts_core::groups::MulticastGroups;
use cts_core::intermediate::MapOutputStore;
use cts_core::metrics::Counter;
use cts_core::packet::CodedPacket;
use cts_core::placement::{FileId, PlacementPlan};
use cts_core::solve::mds_parts;
use cts_core::subset::NodeSet;
use cts_net::cluster::{JobBinding, SharedFabric};
use cts_net::fault::CrashPoint;
use cts_net::health::{HealthBoard, HealthConfig, Heartbeat};
use cts_net::message::Tag;
use cts_net::registry::MembershipView;
use cts_netsim::stats::{NodeStats, RunStats};

use crate::error::{EngineError, JobReport, Result};
use crate::recover::{adopt_dead_partitions, alive_sync, CrashPanic, RecoveryAbort};
use crate::stage::{stages, EngineConfig, NodeWall, RecoveryMode, StageTimer, WallTimes};
use crate::uncoded::JobOutcome;
use crate::workload::Workload;

/// Runs `workload` over `input` with the coded engine at redundancy
/// `cfg.r`.
///
/// Builds an ephemeral [`SharedFabric`] and submits the job at
/// [`JobBinding::ROOT`] — the one-shot path and the resident runtime's
/// per-job path are the same code.
///
/// # Errors
/// `BadConfig` for invalid `(K, r)`; transport and protocol failures
/// propagate.
pub fn run_coded<W: Workload>(
    workload: &W,
    input: Bytes,
    cfg: &EngineConfig,
) -> Result<JobOutcome> {
    // Validate (K, r) before paying for fabric bring-up.
    PlacementPlan::new(cfg.k, cfg.r).map_err(|e| EngineError::BadConfig {
        what: e.to_string(),
    })?;
    let fabric = SharedFabric::build(&cfg.cluster)?;
    run_coded_on(&fabric, JobBinding::ROOT, workload, input, cfg)
}

/// Runs the coded engine as one job on an existing [`SharedFabric`],
/// isolated under `binding`.
///
/// Jobs on nonzero slots live in an 18-bit tag-sequence space
/// ([`Tag::JOB_SEQ_BITS`]), which bounds `C(K, r+1)`; and they cannot use
/// [`RecoveryMode::Speculative`] — the health layer's heartbeats and
/// repair traffic run on raw, unscoped transports and declaring a peer
/// dead would poison every cohabiting job, so recovery is reserved for
/// exclusive (slot-0) fabrics.
///
/// # Errors
/// `BadConfig` for invalid `(K, r)`, world-size mismatch, or the
/// shared-fabric restrictions above; transport and protocol failures
/// propagate.
pub fn run_coded_on<W: Workload>(
    fabric: &SharedFabric,
    binding: JobBinding,
    workload: &W,
    input: Bytes,
    cfg: &EngineConfig,
) -> Result<JobOutcome> {
    let (k, r) = (cfg.k, cfg.r);
    if k != fabric.k() {
        return Err(EngineError::BadConfig {
            what: format!("job wants K = {k} on a fabric of {} ranks", fabric.k()),
        });
    }
    let plan = PlacementPlan::new(k, r).map_err(|e| EngineError::BadConfig {
        what: e.to_string(),
    })?;
    let groups = MulticastGroups::new(k, r).expect("validated by plan");
    let (tag_bits, tag_space) = if binding.slot == 0 {
        (24, "24-bit tag")
    } else {
        (Tag::JOB_SEQ_BITS, "18-bit job-scoped tag")
    };
    if groups.num_groups() >= 1 << tag_bits {
        return Err(EngineError::BadConfig {
            what: format!(
                "C({k},{}) = {} multicast groups exceed the {tag_space} space",
                r + 1,
                groups.num_groups()
            ),
        });
    }
    if cfg.recovery == RecoveryMode::Speculative
        && (cfg.decode != DecodeMode::Quorum || !cfg.field.supports_quorum() || r < 2)
    {
        return Err(EngineError::BadConfig {
            what: "speculative recovery requires GF(256), quorum decode, and r >= 2 \
                   (the MDS quorum absorbs one dead sender per group)"
                .into(),
        });
    }
    if cfg.recovery == RecoveryMode::Speculative && binding.slot != 0 {
        return Err(EngineError::BadConfig {
            what: "speculative recovery requires an exclusive (slot-0) fabric: \
                   heartbeats and repair traffic are unscoped and would poison \
                   cohabiting jobs"
                .into(),
        });
    }

    // Coordinator role: split the input into N = C(K, r) files and stage
    // each node's file set (zero-copy slices of the shared input buffer).
    let n = plan.num_files();
    if cfg.recovery == RecoveryMode::Speculative && n >= 1 << 16 {
        return Err(EngineError::BadConfig {
            what: format!("{n} files exceed the 16-bit recovery tag space"),
        });
    }
    let files = workload.format().split(&input, n as usize);
    let per_node: Vec<Vec<(FileId, Bytes)>> = (0..k)
        .map(|node| {
            plan.files_of_node(node)
                .map(|fid| (fid, files[fid.0 as usize].clone()))
                .collect()
        })
        .collect();

    let spmd = || {
        fabric.run_job(binding, cfg.cluster.nic, per_node, |comm, my_files| {
            node_main(workload, comm, my_files, cfg)
        })
    };
    let run = if cfg.crashes.is_empty() {
        spmd()?
    } else {
        // Crash injections with recovery off (and exhausted recovery
        // capacity with it on) kill the dying rank's thread with a typed
        // panic payload; the cluster's teardown unblocks everyone else.
        // Downcast the payload back into a structured error — anything
        // unexpected keeps propagating as a genuine panic.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(spmd)) {
            Ok(run) => run?,
            Err(payload) => {
                if let Some(c) = payload.downcast_ref::<CrashPanic>() {
                    return Err(EngineError::RankDied {
                        rank: c.rank,
                        point: c.point,
                    });
                }
                if let Some(a) = payload.downcast_ref::<RecoveryAbort>() {
                    return Err(EngineError::Unrecoverable(a.0.clone()));
                }
                std::panic::resume_unwind(payload);
            }
        }
    };

    let mut outputs: Vec<Option<Vec<u8>>> = (0..k).map(|_| None).collect();
    let mut stats = RunStats::new(k, r);
    stats.num_groups = groups.num_groups();
    let mut walls = Vec::with_capacity(k);
    let mut adopted_all: Vec<(usize, Vec<u8>)> = Vec::new();
    for (rank, result) in run.results.into_iter().enumerate() {
        match result? {
            NodeOutcome::Finished {
                output,
                adopted,
                stats: node_stats,
                wall,
            } => {
                outputs[rank] = Some(output);
                stats.per_node[rank] = node_stats;
                walls.push(wall);
                adopted_all.extend(adopted);
            }
            // A crash-injected rank's slot is filled below by its
            // successor's adopted output; its stats stay default (none of
            // its work survived).
            NodeOutcome::Crashed => {}
        }
    }
    for (rank, output) in adopted_all {
        outputs[rank] = Some(output);
    }
    let outputs: Vec<Vec<u8>> = outputs
        .into_iter()
        .enumerate()
        .map(|(rank, o)| {
            o.ok_or_else(|| EngineError::Protocol {
                what: format!("rank {rank} crashed and no survivor adopted its partition"),
            })
        })
        .collect::<Result<_>>()?;
    Ok(JobOutcome {
        outputs,
        stats,
        trace: run.trace,
        spans: run.spans,
        wall: WallTimes::aggregate(&walls),
    })
}

fn group_tag(gid: u64) -> Tag {
    Tag::new(Tag::BCAST, (gid & 0x00FF_FFFF) as u32)
}

/// Parses (zero-copy, reusing `packet`'s shell) and decodes one received
/// packet (Algorithm 2), accumulating decode-work stats and completed
/// intermediates.
fn decode_one(
    raw: &Bytes,
    packet: &mut CodedPacket,
    pipeline: &mut DecodePipeline,
    store: &MapOutputStore,
    stats: &mut NodeStats,
    recovered: &mut Vec<(NodeSet, Vec<u8>)>,
    progress: Option<&Counter>,
) -> Result<()> {
    packet.read_wire(raw)?;
    if let Some(c) = progress {
        c.inc();
    }
    // Decode work: XOR `r-1` known segments against the payload plus the
    // final merge — `r × payload` touched bytes, which at scale is the sum
    // of the packet's true segment lengths.
    stats.decode_work_bytes += packet.seg_lens.iter().map(|(_, l)| *l as u64).sum::<u64>();
    if let Some(done) = pipeline.accept(packet, store)? {
        recovered.push(done);
    }
    Ok(())
}

/// What one rank's thread hands back to the driver: a finished partition
/// (plus any partitions it adopted on behalf of dead ranks), or the
/// marker that this rank was crash-injected and recovery carried on
/// without it.
// One value exists per rank thread for the duration of the job — the
// variant size gap costs nothing worth boxing for.
#[allow(clippy::large_enum_variant)]
enum NodeOutcome {
    Finished {
        output: Vec<u8>,
        adopted: Vec<(usize, Vec<u8>)>,
        stats: NodeStats,
        wall: NodeWall,
    },
    Crashed,
}

type NodeResult = Result<NodeOutcome>;

/// Health-layer state carried by a recovery-mode rank.
struct Recovery {
    board: HealthBoard,
    beat: Heartbeat,
    epoch: u32,
}

impl Recovery {
    fn next_epoch(&mut self) -> u32 {
        let e = self.epoch;
        self.epoch += 1;
        e
    }
}

/// Stage synchronization: plain barriers, or the alive-aware dead-mask
/// exchange when the health layer is running. Every rank walks the same
/// sequence of sync points, so the recovery epochs line up by
/// construction.
enum SyncCtx {
    Barrier,
    Recover(Box<Recovery>),
}

impl SyncCtx {
    fn sync(&mut self, comm: &cts_net::Communicator) -> Result<u128> {
        match self {
            SyncCtx::Barrier => {
                comm.barrier()?;
                Ok(0)
            }
            SyncCtx::Recover(rec) => {
                let epoch = rec.next_epoch();
                alive_sync(comm, &mut rec.board, epoch)
            }
        }
    }
}

/// Fires a configured crash injection, if this is its point. With
/// recovery off the rank dies as a panic (the cluster teardown turns it
/// into a typed fast failure); with recovery on it silences its
/// heartbeat — the only externally observable signal — and returns
/// `true` so the caller exits with [`NodeOutcome::Crashed`], leaving its
/// transport reachable (a fail-stop process, not a severed network).
fn maybe_crash(cfg: &EngineConfig, me: usize, point: CrashPoint, ctx: &mut SyncCtx) -> bool {
    if cfg.crash_point_of(me) != Some(point) {
        return false;
    }
    match ctx {
        SyncCtx::Barrier => std::panic::panic_any(CrashPanic { rank: me, point }),
        SyncCtx::Recover(rec) => {
            rec.beat.stop();
            true
        }
    }
}

/// Borrowed inputs `finish_reduce` needs to run the recovery agreement
/// and adoption ahead of the reduce.
struct RecoveryFinish<'a> {
    plan: &'a PlacementPlan,
    my_files: &'a [(FileId, Bytes)],
}

fn node_main<W: Workload>(
    workload: &W,
    comm: &cts_net::Communicator,
    my_files: Vec<(FileId, Bytes)>,
    cfg: &EngineConfig,
) -> NodeResult {
    let k = comm.world_size();
    let r = cfg.r;
    let me = comm.rank();
    let mut stats = NodeStats::default();
    let mut wall = NodeWall::default();
    let pool = cfg.worker_pool();
    // Live decode progress: one tick per decoded packet, readable mid-job
    // through the daemon's metric registry (`cts stats`, `/metrics`).
    let decode_ctr = comm
        .metrics()
        .map(|h| h.counter("cts_decode_packets_total"));
    // Recovery mode runs a heartbeat beacon and replaces every barrier
    // with the alive-aware dead-mask sync, so a dead rank can never
    // strand a stage transition.
    let mut ctx = if cfg.recovery == RecoveryMode::Speculative {
        let mut board = HealthBoard::new(me, k, HealthConfig::from_heartbeat(cfg.heartbeat));
        // Liveness transitions feed the runtime's metric registry when one
        // is attached (resident service); standalone runs skip this.
        if let Some(hub) = comm.metrics() {
            board = board.with_transition_counters(
                hub.counter("cts_heartbeat_suspect_total"),
                hub.counter("cts_heartbeat_dead_total"),
            );
        }
        SyncCtx::Recover(Box::new(Recovery {
            board,
            beat: Heartbeat::spawn(comm.transport().clone(), cfg.heartbeat),
            epoch: 0,
        }))
    } else {
        SyncCtx::Barrier
    };

    // ---- CodeGen -------------------------------------------------------
    comm.set_stage(stages::CODEGEN);
    let timer = StageTimer::start();
    let plan = PlacementPlan::new(k, r).expect("validated by driver");
    let groups = MulticastGroups::new(k, r).expect("validated by driver");
    // Materialize the global schedule: every group with its sorted member
    // list (the paper's MPI_Comm_split loop over all C(K, r+1) groups).
    let schedule: Vec<(u64, NodeSet, Vec<usize>)> = groups
        .iter_groups()
        .map(|(gid, m)| (gid.0, m, m.to_vec()))
        .collect();
    wall.codegen = timer.stop();
    ctx.sync(comm)?;

    // ---- Map -----------------------------------------------------------
    comm.set_stage(stages::MAP);
    let timer = StageTimer::start();
    let mut store = MapOutputStore::new();
    // Files hash independently: fan the per-file Map out over the worker
    // pool (results come back in file order, so the store contents are
    // identical for any thread count).
    let mapped: Vec<Vec<Vec<u8>>> =
        pool.map(my_files.len(), |i| workload.map_file(&my_files[i].1, k));
    for ((fid, data), intermediates) in my_files.iter().zip(mapped) {
        let file_nodes = plan.nodes_of_file(*fid);
        stats.map_input_bytes += data.len() as u64;
        stats.files_mapped += 1;
        for (t, value) in intermediates.into_iter().enumerate() {
            if plan.keeps_intermediate(me, file_nodes, t) {
                store.insert(t, file_nodes, Bytes::from(value));
            }
        }
    }
    wall.map = timer.stop();
    if maybe_crash(cfg, me, CrashPoint::MidMap, &mut ctx) {
        return Ok(NodeOutcome::Crashed);
    }
    ctx.sync(comm)?;

    // ---- Encode (Algorithm 1) -------------------------------------------
    comm.set_stage(stages::PACK_ENCODE);
    let timer = StageTimer::start();
    // Calibration convention: Encode cost covers serializing/splitting all
    // kept intermediates (the XOR is folded into the calibrated rate).
    stats.pack_bytes = store.total_bytes();
    let encoder = Encoder::with_field(k, r, me, cfg.field).expect("validated by driver");
    // Quorum decode needs MDS-mixed packets, which only GF(256) supports
    // (there is no nontrivial binary MDS code): over GF(2) the quorum
    // engine still polls instead of blocking per sender, but sends the
    // classic packets and needs all of them.
    let quorum = cfg.decode == DecodeMode::Quorum;
    let mds = quorum && cfg.field.supports_quorum();
    // Each packet's wire bytes split into a *scalable* part (the mean
    // segment length — the quantity that grows linearly with input size)
    // and an *overhead* part (the fixed header plus zero-padding, which is
    // a small-scale artifact: at paper scale segments are megabytes and
    // max ≈ mean). The model scales only the scalable part.
    let mut my_packets: std::collections::HashMap<u64, (Bytes, u64)> =
        std::collections::HashMap::new();
    // Groups encode independently: fan Algorithm 1 out over the pool, one
    // warm (scratch, wire buffer) pair per worker so the per-group loop is
    // allocation-free apart from the shareable wire frame itself.
    let owned_groups: Vec<(u64, NodeSet)> = groups
        .groups_of_node(me)
        .map(|(gid, m)| (gid.0, m))
        .collect();
    let encoded: Vec<Result<(u64, Bytes, u64)>> = pool.map_with(
        owned_groups.len(),
        || (EncodeScratch::new(), Vec::new()),
        |(scratch, wire), i| {
            let (gid, m) = owned_groups[i];
            wire.clear();
            let scalable = if mds {
                encoder.encode_group_mds_into(m, &store, scratch)?;
                CodedPacket::write_wire_mds(m, me, &scratch.seg_lens, &scratch.payload, wire);
                // MDS payloads are ≈ total/s (seg_lens carry the r whole
                // reconstruction lengths, each split into s parts).
                scratch.seg_len_sum() / (r as u64 * mds_parts(r + 1) as u64)
            } else {
                encoder.encode_group_into(m, &store, scratch)?;
                CodedPacket::write_wire(m, me, &scratch.seg_lens, &scratch.payload, wire);
                scratch.seg_len_sum() / r as u64
            };
            let overhead = wire.len() as u64 - scalable.min(wire.len() as u64);
            Ok((gid, Bytes::copy_from_slice(wire), overhead))
        },
    );
    for item in encoded {
        let (gid, wire, overhead) = item?;
        my_packets.insert(gid, (wire, overhead));
    }
    wall.pack_encode = timer.stop();
    if maybe_crash(cfg, me, CrashPoint::MidEncode, &mut ctx) {
        return Ok(NodeOutcome::Crashed);
    }
    ctx.sync(comm)?;

    // ---- Multicast Shuffling: serial multicast (Fig. 9(b)) --------------
    // With `pipelined_decode` (the §VI asynchronous-execution step),
    // Algorithm 2 runs inline as packets arrive; otherwise packets are
    // buffered for the separate Decode stage, as the paper executes.
    comm.set_stage(stages::SHUFFLE);
    let timer = StageTimer::start();
    let mut pipeline = DecodePipeline::with_field(k, r, me, cfg.field)
        .expect("validated by driver")
        .with_decode(cfg.decode);
    let mut packet_shell = CodedPacket::empty();
    let mut recovered: Vec<(NodeSet, Vec<u8>)> = Vec::new();
    let mut received: Vec<Bytes> = Vec::new();
    if quorum {
        // Quorum shuffle: fire every owned multicast without waiting for
        // peers (the root arm never blocks on receivers), then poll the
        // expected (group, sender) pairs, decoding inline. Each group
        // releases the moment its decode completes — with MDS packets,
        // after any `r − 1` of its `r` sends — so a straggling or dead
        // sender delays nothing but its own groups' last equation.
        // `strict_serial_shuffle` and `pipelined_decode` have no meaning
        // here and are ignored: the quorum loop is inherently pipelined
        // and unordered.
        let mut sends_done = 0u64;
        for (gid, members, member_list) in &schedule {
            if !members.contains(me) {
                continue;
            }
            if maybe_crash(cfg, me, CrashPoint::AfterSends(sends_done), &mut ctx) {
                return Ok(NodeOutcome::Crashed);
            }
            let (payload, header) = my_packets.remove(gid).expect("one packet per owned group");
            stats.sent_bytes += payload.len() as u64;
            comm.multicast_with_overhead(me, member_list, group_tag(*gid), Some(payload), header)?;
            sends_done += 1;
        }
        // A budget at or past the last send dies here, having sent
        // everything but received nothing.
        if let Some(point @ CrashPoint::AfterSends(n)) = cfg.crash_point_of(me) {
            if n >= sends_done && maybe_crash(cfg, me, point, &mut ctx) {
                return Ok(NodeOutcome::Crashed);
            }
        }
        let my_gids: Vec<u64> = schedule
            .iter()
            .filter(|(_, members, _)| members.contains(me))
            .map(|(gid, _, _)| *gid)
            .collect();
        let mut got: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut pending: Vec<(u64, usize)> = schedule
            .iter()
            .filter(|(_, members, _)| members.contains(me))
            .flat_map(|(gid, _, member_list)| {
                member_list
                    .iter()
                    .filter(|&&sender| sender != me)
                    .map(move |&sender| (*gid, sender))
            })
            .collect();
        let mut done_groups: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let expected = pipeline.expected_total();
        let mut last_progress = std::time::Instant::now();
        while (recovered.len() as u64) < expected {
            if let SyncCtx::Recover(rec) = &mut ctx {
                // Drain heartbeats and drop pending receives from ranks
                // declared dead: the quorum needs only r − 1 of each
                // group's r senders, so a single death costs nothing. If
                // any unfinished group no longer has enough live senders
                // left, the job is unrecoverable — abort the whole
                // cluster with a structured report rather than stall.
                rec.board.tick(comm.transport().as_ref());
                let mut dropped = false;
                let mut i = 0;
                while i < pending.len() {
                    if !rec.board.is_alive(pending[i].1) {
                        pending.swap_remove(i);
                        dropped = true;
                    } else {
                        i += 1;
                    }
                }
                if dropped {
                    let mut alive_pending: std::collections::HashMap<u64, usize> =
                        std::collections::HashMap::new();
                    for &(gid, _) in &pending {
                        *alive_pending.entry(gid).or_insert(0) += 1;
                    }
                    let bad: Vec<u64> = my_gids
                        .iter()
                        .copied()
                        .filter(|gid| {
                            !done_groups.contains(gid)
                                && got.get(gid).copied().unwrap_or(0)
                                    + alive_pending.get(gid).copied().unwrap_or(0)
                                    < r - 1
                        })
                        .collect();
                    if !bad.is_empty() {
                        let report = JobReport {
                            dead: MembershipView::new(k, rec.board.dead_mask()).dead_ranks(),
                            unrecoverable_groups: bad,
                            what: format!(
                                "node {me}: group(s) lost more senders than the single-death \
                                 quorum margin tolerates"
                            ),
                        };
                        rec.beat.stop();
                        std::panic::panic_any(RecoveryAbort(report));
                    }
                }
            }
            let mut progressed = false;
            let mut i = 0;
            while i < pending.len() {
                let (gid, sender) = pending[i];
                if done_groups.contains(&gid) {
                    pending.swap_remove(i);
                    continue;
                }
                match comm.try_recv(sender, group_tag(gid))? {
                    Some(payload) => {
                        progressed = true;
                        *got.entry(gid).or_insert(0) += 1;
                        stats.recv_bytes += payload.len() as u64;
                        let before = recovered.len();
                        decode_one(
                            &payload,
                            &mut packet_shell,
                            &mut pipeline,
                            &store,
                            &mut stats,
                            &mut recovered,
                            decode_ctr.as_deref(),
                        )?;
                        if recovered.len() > before {
                            done_groups.insert(gid);
                        }
                        pending.swap_remove(i);
                    }
                    None => i += 1,
                }
            }
            if progressed {
                last_progress = std::time::Instant::now();
            } else if last_progress.elapsed() > cfg.idle_timeout {
                return Err(EngineError::Protocol {
                    what: format!(
                        "node {me}: quorum shuffle stalled with {}/{} groups incomplete",
                        expected - recovered.len() as u64,
                        expected
                    ),
                });
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
        ctx.sync(comm)?;
        wall.shuffle = timer.stop();

        let timer = StageTimer::start();
        comm.set_stage(stages::UNPACK_DECODE);
        wall.unpack_decode = timer.stop();
        ctx.sync(comm)?;
        if maybe_crash(cfg, me, CrashPoint::PreReduce, &mut ctx) {
            return Ok(NodeOutcome::Crashed);
        }
        let fin = RecoveryFinish {
            plan: &plan,
            my_files: &my_files,
        };
        return finish_reduce(
            workload,
            comm,
            &pool,
            store,
            recovered,
            stats,
            wall,
            &mut ctx,
            Some(fin),
        );
    }
    let mut sends_done = 0u64;
    for (gid, members, member_list) in &schedule {
        if !members.contains(me) {
            if cfg.strict_serial_shuffle {
                comm.barrier()?;
            }
            continue;
        }
        let tag = group_tag(*gid);
        for &sender in member_list {
            if sender == me {
                if maybe_crash(cfg, me, CrashPoint::AfterSends(sends_done), &mut ctx) {
                    return Ok(NodeOutcome::Crashed);
                }
                sends_done += 1;
                let (payload, header) = my_packets.remove(gid).expect("one packet per owned group");
                stats.sent_bytes += payload.len() as u64;
                comm.multicast_with_overhead(me, member_list, tag, Some(payload), header)?;
            } else {
                let payload = comm.multicast(sender, member_list, tag, None)?;
                stats.recv_bytes += payload.len() as u64;
                if cfg.pipelined_decode {
                    decode_one(
                        &payload,
                        &mut packet_shell,
                        &mut pipeline,
                        &store,
                        &mut stats,
                        &mut recovered,
                        decode_ctr.as_deref(),
                    )?;
                } else {
                    received.push(payload);
                }
            }
        }
        if cfg.strict_serial_shuffle {
            comm.barrier()?;
        }
    }
    if let Some(point @ CrashPoint::AfterSends(n)) = cfg.crash_point_of(me) {
        if n >= sends_done && maybe_crash(cfg, me, point, &mut ctx) {
            return Ok(NodeOutcome::Crashed);
        }
    }
    ctx.sync(comm)?;
    wall.shuffle = timer.stop();

    // ---- Decode (Algorithm 2) --------------------------------------------
    comm.set_stage(stages::UNPACK_DECODE);
    let timer = StageTimer::start();
    if pool.threads() > 1 && received.len() > 1 {
        // Packets decode independently (Algorithm 2 is per-packet XOR
        // cancellation); only the final segment assembly is sequential.
        // The fan-out runs in *waves*: each wave decodes a bounded batch
        // (packets parse zero-copy into per-worker shells, accumulators
        // come from a per-worker sharded checkout of the pipeline's pool),
        // then assembles it, returning the completed groups' buffers to
        // the pool before the next wave draws from it. Receive order is
        // group-major, so a wave's completions refill the pool for the
        // next one — steady-state waves reuse buffers instead of
        // allocating one segment per packet — and results return in
        // receive order, so the outcome matches the serial path byte for
        // byte.
        let decoder = pipeline.decoder().clone();
        let wave = (pool.threads() * 16).max(64);
        for batch_start in (0..received.len()).step_by(wave) {
            let batch = &received[batch_start..(batch_start + wave).min(received.len())];
            let per_worker = batch.len().div_ceil(pool.threads());
            let segments: Vec<Result<(u64, cts_core::decode::DecodedSegment)>> = {
                let decoder = &decoder;
                pool.map_with(
                    batch.len(),
                    || (CodedPacket::empty(), pipeline.segment_shard(per_worker)),
                    |(shell, shard), i| {
                        shell.read_wire(&batch[i])?;
                        let work: u64 = shell.seg_lens.iter().map(|(_, l)| *l as u64).sum();
                        // Under process-wide lease contention a worker may
                        // cover more than `per_worker` packets: top the
                        // shard back up (one lock per refill) instead of
                        // falling through to the pool on every packet.
                        if shard.pooled() == 0 {
                            shard.refill(per_worker);
                        }
                        let mut acc = shard.get();
                        let info = decoder.decode_packet_into(shell, &store, &mut acc)?;
                        Ok((
                            work,
                            cts_core::decode::DecodedSegment {
                                file: info.file,
                                sender: info.sender,
                                position: info.position,
                                data: acc,
                            },
                        ))
                    },
                )
            };
            for item in segments {
                let (work, seg) = item?;
                stats.decode_work_bytes += work;
                if let Some(c) = &decode_ctr {
                    c.inc();
                }
                if let Some(done) = pipeline.accept_segment(seg)? {
                    recovered.push(done);
                }
            }
        }
    } else {
        for raw in &received {
            decode_one(
                raw,
                &mut packet_shell,
                &mut pipeline,
                &store,
                &mut stats,
                &mut recovered,
                decode_ctr.as_deref(),
            )?;
        }
    }
    if pipeline.in_flight() != 0 || recovered.len() as u64 != pipeline.expected_total() {
        return Err(EngineError::Protocol {
            what: format!(
                "node {me}: recovered {}/{} intermediates with {} incomplete",
                recovered.len(),
                pipeline.expected_total(),
                pipeline.in_flight()
            ),
        });
    }
    wall.unpack_decode = timer.stop();
    ctx.sync(comm)?;

    if maybe_crash(cfg, me, CrashPoint::PreReduce, &mut ctx) {
        return Ok(NodeOutcome::Crashed);
    }
    finish_reduce(
        workload, comm, &pool, store, recovered, stats, wall, &mut ctx, None,
    )
}

/// The Reduce stage, shared by the barrier-on-all and quorum shuffle
/// paths: merge locally mapped and decoded pieces in ascending file order
/// for a deterministic concatenation, then reduce.
///
/// In recovery mode this is also where speculative re-execution happens:
/// the pre-reduce alive-sync fixes the canonical dead set, survivors
/// rebuild each dead rank's partition on its successor
/// ([`adopt_dead_partitions`]), and the recovery wall-clock folds into
/// the Reduce stage.
#[allow(clippy::too_many_arguments)]
fn finish_reduce<W: Workload>(
    workload: &W,
    comm: &cts_net::Communicator,
    pool: &WorkerPool,
    mut store: MapOutputStore,
    recovered: Vec<(NodeSet, Vec<u8>)>,
    mut stats: NodeStats,
    mut wall: NodeWall,
    ctx: &mut SyncCtx,
    recovery: Option<RecoveryFinish<'_>>,
) -> NodeResult {
    let me = comm.rank();
    let k = comm.world_size();
    let timer = StageTimer::start();
    let mut adopted: Vec<(usize, Vec<u8>)> = Vec::new();
    if let SyncCtx::Recover(rec) = &mut *ctx {
        let fin = recovery.expect("recovery mode implies the quorum path");
        comm.set_stage(stages::RECOVER);
        let epoch = rec.next_epoch();
        let agreed = alive_sync(comm, &mut rec.board, epoch)?;
        if agreed != 0 {
            let membership = MembershipView::new(k, agreed);
            adopted = adopt_dead_partitions(
                workload,
                comm,
                fin.plan,
                &membership,
                fin.my_files,
                &store,
                pool,
                &mut stats,
            )?;
        }
    }
    comm.set_stage(stages::REDUCE);
    let mut pieces: Vec<(u64, Bytes)> = store
        .take_for_target(me)
        .into_iter()
        .map(|(f, b)| (f.bits(), b))
        .collect();
    pieces.extend(
        recovered
            .into_iter()
            .map(|(f, v)| (f.bits(), Bytes::from(v))),
    );
    pieces.sort_unstable_by_key(|(bits, _)| *bits);
    let total: usize = pieces.iter().map(|(_, b)| b.len()).sum();
    let mut partition_data = Vec::with_capacity(total);
    for (_, b) in &pieces {
        partition_data.extend_from_slice(b);
    }
    stats.reduce_input_bytes = partition_data.len() as u64;
    let output = workload.reduce_par(me, &partition_data, pool);
    wall.reduce = timer.stop();
    ctx.sync(comm)?;

    Ok(NodeOutcome::Finished {
        output,
        adopted,
        stats,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uncoded::run_uncoded;
    use crate::verify::run_sequential;
    use crate::workload::InputFormat;

    struct ByteSort;

    impl Workload for ByteSort {
        fn name(&self) -> &str {
            "bytesort"
        }
        fn format(&self) -> InputFormat {
            InputFormat::FixedWidth(1)
        }
        fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
            let mut out = vec![Vec::new(); num_partitions];
            for &b in file {
                out[b as usize % num_partitions].push(b);
            }
            out
        }
        fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
            let mut v = data.to_vec();
            v.sort_unstable();
            v
        }
    }

    fn sample_input(len: usize) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| ((i * 163 + 29) % 241) as u8)
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn coded_matches_sequential_k4_r2() {
        let input = sample_input(1200);
        let outcome = run_coded(&ByteSort, input.clone(), &EngineConfig::local(4, 2)).unwrap();
        assert_eq!(outcome.outputs, run_sequential(&ByteSort, &input, 4));
    }

    #[test]
    fn coded_matches_uncoded_across_k_r() {
        let input = sample_input(2000);
        for (k, r) in [(3, 2), (4, 1), (4, 3), (5, 2), (5, 4), (6, 3)] {
            let coded = run_coded(&ByteSort, input.clone(), &EngineConfig::local(k, r)).unwrap();
            let uncoded =
                run_uncoded(&ByteSort, input.clone(), &EngineConfig::local(k, 1)).unwrap();
            assert_eq!(coded.outputs, uncoded.outputs, "k={k} r={r}");
        }
    }

    #[test]
    fn r_equals_k_needs_no_shuffle() {
        let input = sample_input(800);
        let outcome = run_coded(&ByteSort, input.clone(), &EngineConfig::local(4, 4)).unwrap();
        assert_eq!(outcome.stats.shuffle_bytes(), 0);
        assert_eq!(outcome.stats.num_groups, 0);
        assert_eq!(outcome.outputs, run_sequential(&ByteSort, &input, 4));
    }

    #[test]
    fn comm_load_drops_r_times() {
        // Large enough that the 31-byte packet headers are noise next to
        // the payloads.
        let input = sample_input(120_000);
        let k = 6;
        let uncoded = run_uncoded(&ByteSort, input.clone(), &EngineConfig::local(k, 1)).unwrap();
        let base_load = uncoded.stats.comm_load(input.len() as u64);
        for r in [2usize, 3] {
            let coded = run_coded(&ByteSort, input.clone(), &EngineConfig::local(k, r)).unwrap();
            let load = coded.stats.comm_load(input.len() as u64);
            let expected = cts_core::theory::coded_comm_load(r, k);
            // Real data: small deviations from the uniform-hash ideal plus
            // packet headers.
            assert!(
                (load - expected).abs() / expected < 0.25,
                "k={k} r={r}: load {load} vs theory {expected}"
            );
            // And the r× reduction vs. the uncoded baseline holds.
            let gain = base_load / load;
            assert!(gain > 0.7 * r as f64, "gain {gain} at r={r}");
        }
    }

    #[test]
    fn stats_count_groups_and_files() {
        let input = sample_input(1500);
        let outcome = run_coded(&ByteSort, input.clone(), &EngineConfig::local(5, 2)).unwrap();
        assert_eq!(outcome.stats.num_groups, 10); // C(5,3)
        for n in &outcome.stats.per_node {
            assert_eq!(n.files_mapped, 4); // C(4,1)
        }
        // Map input is r× the uncoded share in total.
        let total_mapped = outcome.stats.total(|n| n.map_input_bytes);
        assert_eq!(total_mapped, 2 * input.len() as u64);
    }

    #[test]
    fn coded_works_over_tcp() {
        let input = sample_input(900);
        let outcome = run_coded(&ByteSort, input.clone(), &EngineConfig::tcp(4, 2)).unwrap();
        assert_eq!(outcome.outputs, run_sequential(&ByteSort, &input, 4));
    }

    #[test]
    fn strict_serial_gives_same_answer() {
        let input = sample_input(1000);
        let mut cfg = EngineConfig::local(4, 2);
        cfg.strict_serial_shuffle = true;
        let a = run_coded(&ByteSort, input.clone(), &cfg).unwrap();
        let b = run_coded(&ByteSort, input, &EngineConfig::local(4, 2)).unwrap();
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn rejects_invalid_r() {
        let err = run_coded(&ByteSort, Bytes::new(), &EngineConfig::local(4, 5)).unwrap_err();
        assert!(matches!(err, EngineError::BadConfig { .. }));
    }

    #[test]
    fn pipelined_decode_matches_staged_decode() {
        let input = sample_input(2_500);
        let staged = run_coded(&ByteSort, input.clone(), &EngineConfig::local(5, 2)).unwrap();
        let pipelined = run_coded(
            &ByteSort,
            input,
            &EngineConfig::local(5, 2).with_pipelined_decode(),
        )
        .unwrap();
        assert_eq!(staged.outputs, pipelined.outputs);
        // Identical traffic and work accounting; only the wall-clock
        // attribution moves (decode inside the shuffle window).
        assert_eq!(
            staged.stats.total(|n| n.decode_work_bytes),
            pipelined.stats.total(|n| n.decode_work_bytes)
        );
        assert_eq!(
            staged.stats.shuffle_bytes(),
            pipelined.stats.shuffle_bytes()
        );
        assert!(
            pipelined.wall.max.unpack_decode
                < staged
                    .wall
                    .max
                    .unpack_decode
                    .max(std::time::Duration::from_micros(1))
                    * 50
        );
    }

    #[test]
    fn quorum_decode_matches_all_decode() {
        use cts_core::field::FieldKind;
        let input = sample_input(2200);
        for field in FieldKind::ALL {
            for (k, r) in [(4, 2), (5, 3), (4, 1), (5, 4)] {
                let cfg = EngineConfig::local(k, r).with_field(field);
                let all = run_coded(&ByteSort, input.clone(), &cfg).unwrap();
                let quorum =
                    run_coded(&ByteSort, input.clone(), &cfg.clone().decode_quorum()).unwrap();
                assert_eq!(all.outputs, quorum.outputs, "k={k} r={r} field={field}");
                // Traffic accounting stays sane: one multicast per group
                // membership either way.
                assert_eq!(all.stats.num_groups, quorum.stats.num_groups);
            }
        }
    }

    #[test]
    fn quorum_decode_works_over_tcp_and_threads() {
        use cts_core::field::FieldKind;
        let input = sample_input(1500);
        let reference = run_sequential(&ByteSort, &input, 4);
        let tcp = run_coded(
            &ByteSort,
            input.clone(),
            &EngineConfig::tcp(4, 3)
                .with_field(FieldKind::Gf256)
                .decode_quorum(),
        )
        .unwrap();
        assert_eq!(tcp.outputs, reference);
        let threaded = run_coded(
            &ByteSort,
            input,
            &EngineConfig::local(4, 3)
                .with_field(FieldKind::Gf256)
                .decode_quorum()
                .with_threads(4),
        )
        .unwrap();
        assert_eq!(threaded.outputs, reference);
    }

    #[test]
    fn speculative_recovery_matches_the_healthy_run() {
        use cts_core::field::FieldKind;
        use cts_net::fault::CrashSpec;
        let input = sample_input(3000);
        let healthy_cfg = EngineConfig::local(6, 3)
            .with_field(FieldKind::Gf256)
            .decode_quorum();
        let healthy = run_coded(&ByteSort, input.clone(), &healthy_cfg).unwrap();
        for point in [
            CrashPoint::MidMap,
            CrashPoint::MidEncode,
            CrashPoint::AfterSends(2),
            CrashPoint::PreReduce,
        ] {
            let cfg = healthy_cfg
                .clone()
                .with_recovery(RecoveryMode::Speculative)
                .with_heartbeat(std::time::Duration::from_millis(5))
                .with_crash(CrashSpec { rank: 2, point });
            let wounded = run_coded(&ByteSort, input.clone(), &cfg).unwrap();
            assert_eq!(wounded.outputs, healthy.outputs, "crash at {point}");
        }
    }

    #[test]
    fn recovery_off_fails_fast_with_the_crash_identity() {
        use cts_core::field::FieldKind;
        use cts_net::fault::CrashSpec;
        let input = sample_input(1500);
        let cfg = EngineConfig::local(5, 2)
            .with_field(FieldKind::Gf256)
            .decode_quorum()
            .with_idle_timeout(std::time::Duration::from_secs(2))
            .with_crash(CrashSpec {
                rank: 3,
                point: CrashPoint::MidMap,
            });
        let err = run_coded(&ByteSort, input, &cfg).unwrap_err();
        assert_eq!(
            err,
            EngineError::RankDied {
                rank: 3,
                point: CrashPoint::MidMap
            }
        );
    }

    #[test]
    fn two_deaths_exhaust_recovery_with_a_structured_report() {
        use cts_core::field::FieldKind;
        use cts_net::fault::CrashSpec;
        let input = sample_input(1500);
        let cfg = EngineConfig::local(5, 2)
            .with_field(FieldKind::Gf256)
            .decode_quorum()
            .with_recovery(RecoveryMode::Speculative)
            .with_heartbeat(std::time::Duration::from_millis(5))
            .with_crash(CrashSpec {
                rank: 1,
                point: CrashPoint::MidMap,
            })
            .with_crash(CrashSpec {
                rank: 4,
                point: CrashPoint::MidMap,
            });
        let err = run_coded(&ByteSort, input, &cfg).unwrap_err();
        match err {
            EngineError::Unrecoverable(report) => {
                assert_eq!(report.dead, vec![1, 4]);
                assert!(!report.unrecoverable_groups.is_empty());
            }
            other => panic!("expected Unrecoverable, got {other}"),
        }
    }

    #[test]
    fn speculative_recovery_requires_quorum_gf256_and_redundancy() {
        let input = sample_input(500);
        for cfg in [
            EngineConfig::local(4, 2).with_recovery(RecoveryMode::Speculative),
            EngineConfig::local(4, 2)
                .with_field(cts_core::field::FieldKind::Gf256)
                .with_recovery(RecoveryMode::Speculative),
            EngineConfig::local(4, 1)
                .with_field(cts_core::field::FieldKind::Gf256)
                .decode_quorum()
                .with_recovery(RecoveryMode::Speculative),
        ] {
            let err = run_coded(&ByteSort, input.clone(), &cfg).unwrap_err();
            assert!(matches!(err, EngineError::BadConfig { .. }), "{cfg:?}");
        }
    }

    #[test]
    fn trace_records_multicasts_once() {
        let input = sample_input(1200);
        let outcome = run_coded(&ByteSort, input, &EngineConfig::local(4, 2)).unwrap();
        use cts_net::trace::EventKind;
        let multicasts = outcome
            .trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Multicast)
            .count();
        // C(4,3) groups × 3 senders each.
        assert_eq!(multicasts, 12);
        // Every multicast reaches exactly r = 2 receivers.
        assert!(outcome
            .trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Multicast)
            .all(|e| e.fanout() == 2));
    }
}
