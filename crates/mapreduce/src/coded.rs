//! The CodedTeraSort-style engine (paper §IV).
//!
//! Six stages, barrier-synchronized:
//!
//! 1. **CodeGen**: every node locally builds the placement, enumerates the
//!    `C(K, r+1)` multicast groups, and "initializes" them (the paper's
//!    `MPI_Comm_split`; our group communicators are member lists, so the
//!    real cost is enumeration — the EC2 cost is modeled).
//! 2. **Map**: each node hashes each of its `C(K-1, r-1)` files, keeping
//!    intermediates per the §IV-B rule.
//! 3. **Encode**: Algorithm 1 — one coded packet per group membership.
//! 4. **Multicast Shuffling**: serial multicast (Fig. 9(b)) — groups in
//!    global id order; within a group, members multicast in rank order over
//!    the configured [`ShuffleFabric`](cts_net::fabric::ShuffleFabric):
//!    true one-to-many sends by default, serial-unicast or fanout emulation
//!    for the ablation baselines.
//! 5. **Decode**: Algorithm 2 — received packets are cancelled against
//!    local intermediates and merged.
//! 6. **Reduce**: identical to the uncoded engine's.

use bytes::Bytes;
use cts_core::decode::{DecodeMode, DecodePipeline};
use cts_core::encode::{EncodeScratch, Encoder};
use cts_core::exec::WorkerPool;
use cts_core::groups::MulticastGroups;
use cts_core::intermediate::MapOutputStore;
use cts_core::packet::CodedPacket;
use cts_core::placement::{FileId, PlacementPlan};
use cts_core::solve::mds_parts;
use cts_core::subset::NodeSet;
use cts_net::cluster::run_spmd_with_inputs;
use cts_net::message::Tag;
use cts_netsim::stats::{NodeStats, RunStats};

use crate::error::{EngineError, Result};
use crate::stage::{stages, EngineConfig, NodeWall, StageTimer, WallTimes};
use crate::uncoded::JobOutcome;
use crate::workload::Workload;

/// Runs `workload` over `input` with the coded engine at redundancy
/// `cfg.r`.
///
/// # Errors
/// `BadConfig` for invalid `(K, r)`; transport and protocol failures
/// propagate.
pub fn run_coded<W: Workload>(
    workload: &W,
    input: Bytes,
    cfg: &EngineConfig,
) -> Result<JobOutcome> {
    let (k, r) = (cfg.k, cfg.r);
    let plan = PlacementPlan::new(k, r).map_err(|e| EngineError::BadConfig {
        what: e.to_string(),
    })?;
    let groups = MulticastGroups::new(k, r).expect("validated by plan");
    if groups.num_groups() >= 1 << 24 {
        return Err(EngineError::BadConfig {
            what: format!(
                "C({k},{}) = {} multicast groups exceed the 24-bit tag space",
                r + 1,
                groups.num_groups()
            ),
        });
    }

    // Coordinator role: split the input into N = C(K, r) files and stage
    // each node's file set (zero-copy slices of the shared input buffer).
    let n = plan.num_files();
    let files = workload.format().split(&input, n as usize);
    let per_node: Vec<Vec<(FileId, Bytes)>> = (0..k)
        .map(|node| {
            plan.files_of_node(node)
                .map(|fid| (fid, files[fid.0 as usize].clone()))
                .collect()
        })
        .collect();

    let run = run_spmd_with_inputs(&cfg.cluster, per_node, |comm, my_files| {
        node_main(workload, comm, my_files, cfg)
    })?;

    let mut outputs = Vec::with_capacity(k);
    let mut stats = RunStats::new(k, r);
    stats.num_groups = groups.num_groups();
    let mut walls = Vec::with_capacity(k);
    for (rank, result) in run.results.into_iter().enumerate() {
        let (output, node_stats, wall) = result?;
        outputs.push(output);
        stats.per_node[rank] = node_stats;
        walls.push(wall);
    }
    Ok(JobOutcome {
        outputs,
        stats,
        trace: run.trace,
        wall: WallTimes::aggregate(&walls),
    })
}

fn group_tag(gid: u64) -> Tag {
    Tag::new(Tag::BCAST, (gid & 0x00FF_FFFF) as u32)
}

/// How long the quorum shuffle's polling loop tolerates zero progress
/// before declaring the run stalled. Generous: it only fires when *no*
/// packet arrives at all — a healthy quorum completes without ever
/// waiting on the slowest sender.
const QUORUM_IDLE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Parses (zero-copy, reusing `packet`'s shell) and decodes one received
/// packet (Algorithm 2), accumulating decode-work stats and completed
/// intermediates.
fn decode_one(
    raw: &Bytes,
    packet: &mut CodedPacket,
    pipeline: &mut DecodePipeline,
    store: &MapOutputStore,
    stats: &mut NodeStats,
    recovered: &mut Vec<(NodeSet, Vec<u8>)>,
) -> Result<()> {
    packet.read_wire(raw)?;
    // Decode work: XOR `r-1` known segments against the payload plus the
    // final merge — `r × payload` touched bytes, which at scale is the sum
    // of the packet's true segment lengths.
    stats.decode_work_bytes += packet.seg_lens.iter().map(|(_, l)| *l as u64).sum::<u64>();
    if let Some(done) = pipeline.accept(packet, store)? {
        recovered.push(done);
    }
    Ok(())
}

type NodeResult = Result<(Vec<u8>, NodeStats, NodeWall)>;

fn node_main<W: Workload>(
    workload: &W,
    comm: &cts_net::Communicator,
    my_files: Vec<(FileId, Bytes)>,
    cfg: &EngineConfig,
) -> NodeResult {
    let k = comm.world_size();
    let r = cfg.r;
    let me = comm.rank();
    let mut stats = NodeStats::default();
    let mut wall = NodeWall::default();
    let pool = WorkerPool::new(cfg.threads);

    // ---- CodeGen -------------------------------------------------------
    comm.set_stage(stages::CODEGEN);
    let timer = StageTimer::start();
    let plan = PlacementPlan::new(k, r).expect("validated by driver");
    let groups = MulticastGroups::new(k, r).expect("validated by driver");
    // Materialize the global schedule: every group with its sorted member
    // list (the paper's MPI_Comm_split loop over all C(K, r+1) groups).
    let schedule: Vec<(u64, NodeSet, Vec<usize>)> = groups
        .iter_groups()
        .map(|(gid, m)| (gid.0, m, m.to_vec()))
        .collect();
    wall.codegen = timer.stop();
    comm.barrier()?;

    // ---- Map -----------------------------------------------------------
    comm.set_stage(stages::MAP);
    let timer = StageTimer::start();
    let mut store = MapOutputStore::new();
    // Files hash independently: fan the per-file Map out over the worker
    // pool (results come back in file order, so the store contents are
    // identical for any thread count).
    let mapped: Vec<Vec<Vec<u8>>> =
        pool.map(my_files.len(), |i| workload.map_file(&my_files[i].1, k));
    for ((fid, data), intermediates) in my_files.iter().zip(mapped) {
        let file_nodes = plan.nodes_of_file(*fid);
        stats.map_input_bytes += data.len() as u64;
        stats.files_mapped += 1;
        for (t, value) in intermediates.into_iter().enumerate() {
            if plan.keeps_intermediate(me, file_nodes, t) {
                store.insert(t, file_nodes, Bytes::from(value));
            }
        }
    }
    wall.map = timer.stop();
    comm.barrier()?;

    // ---- Encode (Algorithm 1) -------------------------------------------
    comm.set_stage(stages::PACK_ENCODE);
    let timer = StageTimer::start();
    // Calibration convention: Encode cost covers serializing/splitting all
    // kept intermediates (the XOR is folded into the calibrated rate).
    stats.pack_bytes = store.total_bytes();
    let encoder = Encoder::with_field(k, r, me, cfg.field).expect("validated by driver");
    // Quorum decode needs MDS-mixed packets, which only GF(256) supports
    // (there is no nontrivial binary MDS code): over GF(2) the quorum
    // engine still polls instead of blocking per sender, but sends the
    // classic packets and needs all of them.
    let quorum = cfg.decode == DecodeMode::Quorum;
    let mds = quorum && cfg.field.supports_quorum();
    // Each packet's wire bytes split into a *scalable* part (the mean
    // segment length — the quantity that grows linearly with input size)
    // and an *overhead* part (the fixed header plus zero-padding, which is
    // a small-scale artifact: at paper scale segments are megabytes and
    // max ≈ mean). The model scales only the scalable part.
    let mut my_packets: std::collections::HashMap<u64, (Bytes, u64)> =
        std::collections::HashMap::new();
    // Groups encode independently: fan Algorithm 1 out over the pool, one
    // warm (scratch, wire buffer) pair per worker so the per-group loop is
    // allocation-free apart from the shareable wire frame itself.
    let owned_groups: Vec<(u64, NodeSet)> = groups
        .groups_of_node(me)
        .map(|(gid, m)| (gid.0, m))
        .collect();
    let encoded: Vec<Result<(u64, Bytes, u64)>> = pool.map_with(
        owned_groups.len(),
        || (EncodeScratch::new(), Vec::new()),
        |(scratch, wire), i| {
            let (gid, m) = owned_groups[i];
            wire.clear();
            let scalable = if mds {
                encoder.encode_group_mds_into(m, &store, scratch)?;
                CodedPacket::write_wire_mds(m, me, &scratch.seg_lens, &scratch.payload, wire);
                // MDS payloads are ≈ total/s (seg_lens carry the r whole
                // reconstruction lengths, each split into s parts).
                scratch.seg_len_sum() / (r as u64 * mds_parts(r + 1) as u64)
            } else {
                encoder.encode_group_into(m, &store, scratch)?;
                CodedPacket::write_wire(m, me, &scratch.seg_lens, &scratch.payload, wire);
                scratch.seg_len_sum() / r as u64
            };
            let overhead = wire.len() as u64 - scalable.min(wire.len() as u64);
            Ok((gid, Bytes::copy_from_slice(wire), overhead))
        },
    );
    for item in encoded {
        let (gid, wire, overhead) = item?;
        my_packets.insert(gid, (wire, overhead));
    }
    wall.pack_encode = timer.stop();
    comm.barrier()?;

    // ---- Multicast Shuffling: serial multicast (Fig. 9(b)) --------------
    // With `pipelined_decode` (the §VI asynchronous-execution step),
    // Algorithm 2 runs inline as packets arrive; otherwise packets are
    // buffered for the separate Decode stage, as the paper executes.
    comm.set_stage(stages::SHUFFLE);
    let timer = StageTimer::start();
    let mut pipeline = DecodePipeline::with_field(k, r, me, cfg.field)
        .expect("validated by driver")
        .with_decode(cfg.decode);
    let mut packet_shell = CodedPacket::empty();
    let mut recovered: Vec<(NodeSet, Vec<u8>)> = Vec::new();
    let mut received: Vec<Bytes> = Vec::new();
    if quorum {
        // Quorum shuffle: fire every owned multicast without waiting for
        // peers (the root arm never blocks on receivers), then poll the
        // expected (group, sender) pairs, decoding inline. Each group
        // releases the moment its decode completes — with MDS packets,
        // after any `r − 1` of its `r` sends — so a straggling or dead
        // sender delays nothing but its own groups' last equation.
        // `strict_serial_shuffle` and `pipelined_decode` have no meaning
        // here and are ignored: the quorum loop is inherently pipelined
        // and unordered.
        for (gid, members, member_list) in &schedule {
            if !members.contains(me) {
                continue;
            }
            let (payload, header) = my_packets.remove(gid).expect("one packet per owned group");
            stats.sent_bytes += payload.len() as u64;
            comm.multicast_with_overhead(me, member_list, group_tag(*gid), Some(payload), header)?;
        }
        let mut pending: Vec<(u64, usize)> = schedule
            .iter()
            .filter(|(_, members, _)| members.contains(me))
            .flat_map(|(gid, _, member_list)| {
                member_list
                    .iter()
                    .filter(|&&sender| sender != me)
                    .map(move |&sender| (*gid, sender))
            })
            .collect();
        let mut done_groups: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let expected = pipeline.expected_total();
        let mut last_progress = std::time::Instant::now();
        while (recovered.len() as u64) < expected {
            let mut progressed = false;
            let mut i = 0;
            while i < pending.len() {
                let (gid, sender) = pending[i];
                if done_groups.contains(&gid) {
                    pending.swap_remove(i);
                    continue;
                }
                match comm.try_recv(sender, group_tag(gid))? {
                    Some(payload) => {
                        progressed = true;
                        stats.recv_bytes += payload.len() as u64;
                        let before = recovered.len();
                        decode_one(
                            &payload,
                            &mut packet_shell,
                            &mut pipeline,
                            &store,
                            &mut stats,
                            &mut recovered,
                        )?;
                        if recovered.len() > before {
                            done_groups.insert(gid);
                        }
                        pending.swap_remove(i);
                    }
                    None => i += 1,
                }
            }
            if progressed {
                last_progress = std::time::Instant::now();
            } else if last_progress.elapsed() > QUORUM_IDLE_TIMEOUT {
                return Err(EngineError::Protocol {
                    what: format!(
                        "node {me}: quorum shuffle stalled with {}/{} groups incomplete",
                        expected - recovered.len() as u64,
                        expected
                    ),
                });
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
        comm.barrier()?;
        wall.shuffle = timer.stop();

        let timer = StageTimer::start();
        comm.set_stage(stages::UNPACK_DECODE);
        wall.unpack_decode = timer.stop();
        comm.barrier()?;
        return finish_reduce(workload, comm, &pool, store, recovered, stats, wall);
    }
    for (gid, members, member_list) in &schedule {
        if !members.contains(me) {
            if cfg.strict_serial_shuffle {
                comm.barrier()?;
            }
            continue;
        }
        let tag = group_tag(*gid);
        for &sender in member_list {
            if sender == me {
                let (payload, header) = my_packets.remove(gid).expect("one packet per owned group");
                stats.sent_bytes += payload.len() as u64;
                comm.multicast_with_overhead(me, member_list, tag, Some(payload), header)?;
            } else {
                let payload = comm.multicast(sender, member_list, tag, None)?;
                stats.recv_bytes += payload.len() as u64;
                if cfg.pipelined_decode {
                    decode_one(
                        &payload,
                        &mut packet_shell,
                        &mut pipeline,
                        &store,
                        &mut stats,
                        &mut recovered,
                    )?;
                } else {
                    received.push(payload);
                }
            }
        }
        if cfg.strict_serial_shuffle {
            comm.barrier()?;
        }
    }
    comm.barrier()?;
    wall.shuffle = timer.stop();

    // ---- Decode (Algorithm 2) --------------------------------------------
    comm.set_stage(stages::UNPACK_DECODE);
    let timer = StageTimer::start();
    if pool.threads() > 1 && received.len() > 1 {
        // Packets decode independently (Algorithm 2 is per-packet XOR
        // cancellation); only the final segment assembly is sequential.
        // The fan-out runs in *waves*: each wave decodes a bounded batch
        // (packets parse zero-copy into per-worker shells, accumulators
        // come from a per-worker sharded checkout of the pipeline's pool),
        // then assembles it, returning the completed groups' buffers to
        // the pool before the next wave draws from it. Receive order is
        // group-major, so a wave's completions refill the pool for the
        // next one — steady-state waves reuse buffers instead of
        // allocating one segment per packet — and results return in
        // receive order, so the outcome matches the serial path byte for
        // byte.
        let decoder = pipeline.decoder().clone();
        let wave = (pool.threads() * 16).max(64);
        for batch_start in (0..received.len()).step_by(wave) {
            let batch = &received[batch_start..(batch_start + wave).min(received.len())];
            let per_worker = batch.len().div_ceil(pool.threads());
            let segments: Vec<Result<(u64, cts_core::decode::DecodedSegment)>> = {
                let decoder = &decoder;
                pool.map_with(
                    batch.len(),
                    || (CodedPacket::empty(), pipeline.segment_shard(per_worker)),
                    |(shell, shard), i| {
                        shell.read_wire(&batch[i])?;
                        let work: u64 = shell.seg_lens.iter().map(|(_, l)| *l as u64).sum();
                        // Under process-wide lease contention a worker may
                        // cover more than `per_worker` packets: top the
                        // shard back up (one lock per refill) instead of
                        // falling through to the pool on every packet.
                        if shard.pooled() == 0 {
                            shard.refill(per_worker);
                        }
                        let mut acc = shard.get();
                        let info = decoder.decode_packet_into(shell, &store, &mut acc)?;
                        Ok((
                            work,
                            cts_core::decode::DecodedSegment {
                                file: info.file,
                                sender: info.sender,
                                position: info.position,
                                data: acc,
                            },
                        ))
                    },
                )
            };
            for item in segments {
                let (work, seg) = item?;
                stats.decode_work_bytes += work;
                if let Some(done) = pipeline.accept_segment(seg)? {
                    recovered.push(done);
                }
            }
        }
    } else {
        for raw in &received {
            decode_one(
                raw,
                &mut packet_shell,
                &mut pipeline,
                &store,
                &mut stats,
                &mut recovered,
            )?;
        }
    }
    if pipeline.in_flight() != 0 || recovered.len() as u64 != pipeline.expected_total() {
        return Err(EngineError::Protocol {
            what: format!(
                "node {me}: recovered {}/{} intermediates with {} incomplete",
                recovered.len(),
                pipeline.expected_total(),
                pipeline.in_flight()
            ),
        });
    }
    wall.unpack_decode = timer.stop();
    comm.barrier()?;

    finish_reduce(workload, comm, &pool, store, recovered, stats, wall)
}

/// The Reduce stage, shared by the barrier-on-all and quorum shuffle
/// paths: merge locally mapped and decoded pieces in ascending file order
/// for a deterministic concatenation, then reduce.
fn finish_reduce<W: Workload>(
    workload: &W,
    comm: &cts_net::Communicator,
    pool: &WorkerPool,
    mut store: MapOutputStore,
    recovered: Vec<(NodeSet, Vec<u8>)>,
    mut stats: NodeStats,
    mut wall: NodeWall,
) -> NodeResult {
    let me = comm.rank();
    comm.set_stage(stages::REDUCE);
    let timer = StageTimer::start();
    let mut pieces: Vec<(u64, Bytes)> = store
        .take_for_target(me)
        .into_iter()
        .map(|(f, b)| (f.bits(), b))
        .collect();
    pieces.extend(
        recovered
            .into_iter()
            .map(|(f, v)| (f.bits(), Bytes::from(v))),
    );
    pieces.sort_unstable_by_key(|(bits, _)| *bits);
    let total: usize = pieces.iter().map(|(_, b)| b.len()).sum();
    let mut partition_data = Vec::with_capacity(total);
    for (_, b) in &pieces {
        partition_data.extend_from_slice(b);
    }
    stats.reduce_input_bytes = partition_data.len() as u64;
    let output = workload.reduce_par(me, &partition_data, pool);
    wall.reduce = timer.stop();
    comm.barrier()?;

    Ok((output, stats, wall))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uncoded::run_uncoded;
    use crate::verify::run_sequential;
    use crate::workload::InputFormat;

    struct ByteSort;

    impl Workload for ByteSort {
        fn name(&self) -> &str {
            "bytesort"
        }
        fn format(&self) -> InputFormat {
            InputFormat::FixedWidth(1)
        }
        fn map_file(&self, file: &[u8], num_partitions: usize) -> Vec<Vec<u8>> {
            let mut out = vec![Vec::new(); num_partitions];
            for &b in file {
                out[b as usize % num_partitions].push(b);
            }
            out
        }
        fn reduce(&self, _partition: usize, data: &[u8]) -> Vec<u8> {
            let mut v = data.to_vec();
            v.sort_unstable();
            v
        }
    }

    fn sample_input(len: usize) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| ((i * 163 + 29) % 241) as u8)
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn coded_matches_sequential_k4_r2() {
        let input = sample_input(1200);
        let outcome = run_coded(&ByteSort, input.clone(), &EngineConfig::local(4, 2)).unwrap();
        assert_eq!(outcome.outputs, run_sequential(&ByteSort, &input, 4));
    }

    #[test]
    fn coded_matches_uncoded_across_k_r() {
        let input = sample_input(2000);
        for (k, r) in [(3, 2), (4, 1), (4, 3), (5, 2), (5, 4), (6, 3)] {
            let coded = run_coded(&ByteSort, input.clone(), &EngineConfig::local(k, r)).unwrap();
            let uncoded =
                run_uncoded(&ByteSort, input.clone(), &EngineConfig::local(k, 1)).unwrap();
            assert_eq!(coded.outputs, uncoded.outputs, "k={k} r={r}");
        }
    }

    #[test]
    fn r_equals_k_needs_no_shuffle() {
        let input = sample_input(800);
        let outcome = run_coded(&ByteSort, input.clone(), &EngineConfig::local(4, 4)).unwrap();
        assert_eq!(outcome.stats.shuffle_bytes(), 0);
        assert_eq!(outcome.stats.num_groups, 0);
        assert_eq!(outcome.outputs, run_sequential(&ByteSort, &input, 4));
    }

    #[test]
    fn comm_load_drops_r_times() {
        // Large enough that the 31-byte packet headers are noise next to
        // the payloads.
        let input = sample_input(120_000);
        let k = 6;
        let uncoded = run_uncoded(&ByteSort, input.clone(), &EngineConfig::local(k, 1)).unwrap();
        let base_load = uncoded.stats.comm_load(input.len() as u64);
        for r in [2usize, 3] {
            let coded = run_coded(&ByteSort, input.clone(), &EngineConfig::local(k, r)).unwrap();
            let load = coded.stats.comm_load(input.len() as u64);
            let expected = cts_core::theory::coded_comm_load(r, k);
            // Real data: small deviations from the uniform-hash ideal plus
            // packet headers.
            assert!(
                (load - expected).abs() / expected < 0.25,
                "k={k} r={r}: load {load} vs theory {expected}"
            );
            // And the r× reduction vs. the uncoded baseline holds.
            let gain = base_load / load;
            assert!(gain > 0.7 * r as f64, "gain {gain} at r={r}");
        }
    }

    #[test]
    fn stats_count_groups_and_files() {
        let input = sample_input(1500);
        let outcome = run_coded(&ByteSort, input.clone(), &EngineConfig::local(5, 2)).unwrap();
        assert_eq!(outcome.stats.num_groups, 10); // C(5,3)
        for n in &outcome.stats.per_node {
            assert_eq!(n.files_mapped, 4); // C(4,1)
        }
        // Map input is r× the uncoded share in total.
        let total_mapped = outcome.stats.total(|n| n.map_input_bytes);
        assert_eq!(total_mapped, 2 * input.len() as u64);
    }

    #[test]
    fn coded_works_over_tcp() {
        let input = sample_input(900);
        let outcome = run_coded(&ByteSort, input.clone(), &EngineConfig::tcp(4, 2)).unwrap();
        assert_eq!(outcome.outputs, run_sequential(&ByteSort, &input, 4));
    }

    #[test]
    fn strict_serial_gives_same_answer() {
        let input = sample_input(1000);
        let mut cfg = EngineConfig::local(4, 2);
        cfg.strict_serial_shuffle = true;
        let a = run_coded(&ByteSort, input.clone(), &cfg).unwrap();
        let b = run_coded(&ByteSort, input, &EngineConfig::local(4, 2)).unwrap();
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn rejects_invalid_r() {
        let err = run_coded(&ByteSort, Bytes::new(), &EngineConfig::local(4, 5)).unwrap_err();
        assert!(matches!(err, EngineError::BadConfig { .. }));
    }

    #[test]
    fn pipelined_decode_matches_staged_decode() {
        let input = sample_input(2_500);
        let staged = run_coded(&ByteSort, input.clone(), &EngineConfig::local(5, 2)).unwrap();
        let pipelined = run_coded(
            &ByteSort,
            input,
            &EngineConfig::local(5, 2).with_pipelined_decode(),
        )
        .unwrap();
        assert_eq!(staged.outputs, pipelined.outputs);
        // Identical traffic and work accounting; only the wall-clock
        // attribution moves (decode inside the shuffle window).
        assert_eq!(
            staged.stats.total(|n| n.decode_work_bytes),
            pipelined.stats.total(|n| n.decode_work_bytes)
        );
        assert_eq!(
            staged.stats.shuffle_bytes(),
            pipelined.stats.shuffle_bytes()
        );
        assert!(
            pipelined.wall.max.unpack_decode
                < staged
                    .wall
                    .max
                    .unpack_decode
                    .max(std::time::Duration::from_micros(1))
                    * 50
        );
    }

    #[test]
    fn quorum_decode_matches_all_decode() {
        use cts_core::field::FieldKind;
        let input = sample_input(2200);
        for field in FieldKind::ALL {
            for (k, r) in [(4, 2), (5, 3), (4, 1), (5, 4)] {
                let cfg = EngineConfig::local(k, r).with_field(field);
                let all = run_coded(&ByteSort, input.clone(), &cfg).unwrap();
                let quorum =
                    run_coded(&ByteSort, input.clone(), &cfg.clone().decode_quorum()).unwrap();
                assert_eq!(all.outputs, quorum.outputs, "k={k} r={r} field={field}");
                // Traffic accounting stays sane: one multicast per group
                // membership either way.
                assert_eq!(all.stats.num_groups, quorum.stats.num_groups);
            }
        }
    }

    #[test]
    fn quorum_decode_works_over_tcp_and_threads() {
        use cts_core::field::FieldKind;
        let input = sample_input(1500);
        let reference = run_sequential(&ByteSort, &input, 4);
        let tcp = run_coded(
            &ByteSort,
            input.clone(),
            &EngineConfig::tcp(4, 3)
                .with_field(FieldKind::Gf256)
                .decode_quorum(),
        )
        .unwrap();
        assert_eq!(tcp.outputs, reference);
        let threaded = run_coded(
            &ByteSort,
            input,
            &EngineConfig::local(4, 3)
                .with_field(FieldKind::Gf256)
                .decode_quorum()
                .with_threads(4),
        )
        .unwrap();
        assert_eq!(threaded.outputs, reference);
    }

    #[test]
    fn trace_records_multicasts_once() {
        let input = sample_input(1200);
        let outcome = run_coded(&ByteSort, input, &EngineConfig::local(4, 2)).unwrap();
        use cts_net::trace::EventKind;
        let multicasts = outcome
            .trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Multicast)
            .count();
        // C(4,3) groups × 3 senders each.
        assert_eq!(multicasts, 12);
        // Every multicast reaches exactly r = 2 receivers.
        assert!(outcome
            .trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Multicast)
            .all(|e| e.fanout() == 2));
    }
}
