//! Property-based tests of the coded-shuffle invariants.

use bytes::Bytes;
use cts_core::combinatorics::{binomial, colex_rank, colex_unrank, Combinations};
use cts_core::decode::DecodePipeline;
use cts_core::encode::Encoder;
use cts_core::intermediate::MapOutputStore;
use cts_core::packet::CodedPacket;
use cts_core::placement::PlacementPlan;
use cts_core::segment::{max_segment_len, segment_span};
use cts_core::subset::NodeSet;
use cts_core::theory;
use cts_core::xor::{xor_into, xor_padded};
use proptest::prelude::*;

proptest! {
    /// rank ∘ unrank is the identity for all valid (n, k, rank).
    #[test]
    fn colex_rank_unrank_roundtrip(n in 1usize..=16, sel in 0u64..1_000_000) {
        for k in 1..=n {
            let total = binomial(n as u64, k as u64);
            let rank = sel % total;
            let set = colex_unrank(rank, k, n);
            prop_assert_eq!(set.len(), k);
            prop_assert_eq!(colex_rank(set), rank);
        }
    }

    /// Every r-subset of nodes shares exactly one file in the placement.
    #[test]
    fn placement_every_r_subset_has_unique_file(k in 1usize..=10, r_sel in 0usize..10) {
        let r = 1 + r_sel % k;
        let plan = PlacementPlan::new(k, r).unwrap();
        let mut count = 0u64;
        for s in Combinations::new(k, r) {
            let id = plan.file_of_nodes(s).unwrap();
            prop_assert_eq!(plan.nodes_of_file(id), s);
            count += 1;
        }
        prop_assert_eq!(count, plan.num_files());
    }

    /// XOR into an accumulator is an involution for arbitrary buffers.
    #[test]
    fn xor_involution(a in proptest::collection::vec(any::<u8>(), 0..512),
                      b in proptest::collection::vec(any::<u8>(), 0..512)) {
        let out1 = xor_padded(&a, &b);
        let out2 = xor_padded(&out1, &b);
        // out2 restores `a` zero-padded to max(len a, len b).
        prop_assert_eq!(&out2[..a.len().min(out2.len())], &a[..a.len().min(out2.len())]);
        for &byte in &out2[a.len()..] {
            prop_assert_eq!(byte, 0);
        }
        let mut acc = vec![0u8; a.len().max(b.len())];
        xor_into(&mut acc, &a);
        xor_into(&mut acc, &b);
        prop_assert_eq!(acc, out1);
    }

    /// Segment spans tile the buffer for arbitrary lengths and part counts.
    #[test]
    fn segments_tile(total in 0usize..100_000, parts in 1usize..=64) {
        let mut cursor = 0;
        let mut max_seen = 0;
        for p in 0..parts {
            let s = segment_span(total, parts, p);
            prop_assert_eq!(s.offset, cursor);
            cursor += s.len;
            max_seen = max_seen.max(s.len);
        }
        prop_assert_eq!(cursor, total);
        prop_assert_eq!(max_seen, max_segment_len(total, parts));
    }

    /// Packet wire format roundtrips for arbitrary well-formed packets.
    #[test]
    fn packet_wire_roundtrip(
        group_bits in 1u64..(1u64 << 20),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let group = NodeSet::from_bits(group_bits);
        prop_assume!(group.len() >= 2);
        let sender = group.min().unwrap();
        let others: Vec<_> = group.iter().filter(|&n| n != sender).collect();
        // Lengths: last one is the payload length (the longest), rest shorter.
        let mut seg_lens: Vec<(usize, u32)> = others
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, (payload.len().saturating_sub(i)) as u32))
            .collect();
        seg_lens.sort_by_key(|(t, _)| *t);
        // Ensure at least one segment claims the full payload length.
        if let Some(first) = seg_lens.first_mut() {
            first.1 = payload.len() as u32;
        }
        let pkt = CodedPacket { group, sender, seg_lens, payload: payload.into(), mds: false };
        let rt = CodedPacket::from_bytes(&pkt.to_bytes()).unwrap();
        prop_assert_eq!(pkt, rt);
    }

    /// End-to-end encode → wire → decode recovers every missing
    /// intermediate, for random (k, r) and random value sizes.
    #[test]
    fn coded_exchange_recovers_everything(
        k in 2usize..=7,
        r_sel in 0usize..6,
        base_len in 0usize..40,
        seed in any::<u64>(),
    ) {
        let r = 1 + r_sel % k;
        let plan = PlacementPlan::new(k, r).unwrap();

        // Pseudo-random but deterministic value for (t, F).
        let value_for = |t: usize, f: NodeSet| -> Vec<u8> {
            let mix = seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ f.bits().wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let len = base_len + (mix % 17) as usize;
            (0..len).map(|i| (mix.wrapping_add(i as u64).wrapping_mul(0x94D0_49BB_1331_11EB) >> 32) as u8).collect()
        };

        let stores: Vec<MapOutputStore> = (0..k).map(|node| {
            let mut st = MapOutputStore::new();
            for fid in plan.files_of_node(node) {
                let f = plan.nodes_of_file(fid);
                for t in 0..k {
                    if plan.keeps_intermediate(node, f, t) {
                        st.insert(t, f, Bytes::from(value_for(t, f)));
                    }
                }
            }
            st
        }).collect();

        let mut pipes: Vec<DecodePipeline> =
            (0..k).map(|n| DecodePipeline::new(k, r, n).unwrap()).collect();
        let mut recovered: Vec<Vec<(NodeSet, Vec<u8>)>> = vec![Vec::new(); k];

        for sender in 0..k {
            let enc = Encoder::new(k, r, sender).unwrap();
            for pkt in enc.encode_all(&stores[sender]).unwrap() {
                let pkt = CodedPacket::from_bytes(&pkt.to_bytes()).unwrap();
                for rx in pkt.group.iter().filter(|&n| n != sender) {
                    if let Some(done) = pipes[rx].accept(&pkt, &stores[rx]).unwrap() {
                        recovered[rx].push(done);
                    }
                }
            }
        }

        for (node, got) in recovered.iter().enumerate() {
            prop_assert_eq!(got.len() as u64, binomial((k - 1) as u64, r as u64));
            for (file, data) in got {
                prop_assert!(!file.contains(node));
                prop_assert_eq!(data, &value_for(node, *file));
            }
        }
    }

    /// The communication-load tradeoff identities hold for all (k, r).
    #[test]
    fn theory_identities(k in 1usize..=32, r_sel in 0usize..32) {
        let r = 1 + r_sel % k;
        let unc = theory::uncoded_comm_load(r, k);
        let cod = theory::coded_comm_load(r, k);
        prop_assert!((cod * r as f64 - unc).abs() < 1e-12);
        prop_assert!((0.0..1.0).contains(&unc));
        // Predicted time at r = 1 equals the baseline sum.
        let t = theory::predicted_total_time(1, 2.0, 50.0, 3.0);
        prop_assert!((t - 55.0).abs() < 1e-12);
    }
}
