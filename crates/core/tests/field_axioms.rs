//! Property-based tests of the GF(256) field algebra and the
//! scalar ↔ SIMD kernel equivalence the coding plane relies on.
//!
//! The q-ary coded shuffle is only correct if GF(256) really is a field
//! (so per-packet cancellation plus division by the own coefficient
//! recovers the segment exactly) and if every runtime-dispatched kernel
//! computes the same function as the scalar log/exp-table reference —
//! including on the unaligned lengths the vector loops' tails handle.

use cts_core::gf256::{add_scaled_slice_with, inv, mul, mul_slice_with, Gf256Kernel, EXP, LOG};
use proptest::prelude::*;

/// Slice lengths that exercise empty, sub-lane, one-lane, lane-boundary,
/// and multi-lane-plus-tail cases for both the 32-byte AVX2 and the
/// 16-byte NEON loops.
const UNALIGNED_LENS: [usize; 9] = [0, 1, 7, 31, 63, 100, 4095, 4096, 4097];

proptest! {
    /// Multiplication is commutative and associative.
    #[test]
    fn mul_commutative_associative(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(mul(a, b), mul(b, a));
        prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
    }

    /// Multiplication distributes over addition (XOR).
    #[test]
    fn mul_distributes_over_xor(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(mul(a, b ^ c), mul(a, b) ^ mul(a, c));
    }

    /// 0 annihilates and 1 is the multiplicative identity.
    #[test]
    fn mul_identities(a in any::<u8>()) {
        prop_assert_eq!(mul(a, 0), 0);
        prop_assert_eq!(mul(0, a), 0);
        prop_assert_eq!(mul(a, 1), a);
        prop_assert_eq!(mul(1, a), a);
    }

    /// Every kernel agrees with the scalar reference on `dst ^= c ⊙ src`
    /// at every unaligned length (vector body + tail both covered).
    #[test]
    fn kernels_agree_on_add_scaled(seed in any::<u64>(), c in any::<u8>()) {
        for len in UNALIGNED_LENS {
            let src: Vec<u8> = (0..len).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as u8).collect();
            let dst0: Vec<u8> = (0..len).map(|i| (seed.wrapping_add(i as u64 * 7) >> 29) as u8).collect();
            let mut reference = dst0.clone();
            add_scaled_slice_with(Gf256Kernel::Scalar, &mut reference, &src, c);
            for kernel in Gf256Kernel::ALL {
                if !kernel.supported() {
                    continue;
                }
                let mut dst = dst0.clone();
                add_scaled_slice_with(kernel, &mut dst, &src, c);
                prop_assert_eq!(&dst, &reference, "{} len {}", kernel, len);
            }
        }
    }

    /// Every kernel agrees with the scalar reference on in-place scaling.
    #[test]
    fn kernels_agree_on_mul_slice(seed in any::<u64>(), c in any::<u8>()) {
        for len in UNALIGNED_LENS {
            let buf0: Vec<u8> = (0..len).map(|i| (seed.wrapping_mul(i as u64 + 3) >> 17) as u8).collect();
            let mut reference = buf0.clone();
            mul_slice_with(Gf256Kernel::Scalar, &mut reference, c);
            for kernel in Gf256Kernel::ALL {
                if !kernel.supported() {
                    continue;
                }
                let mut buf = buf0.clone();
                mul_slice_with(kernel, &mut buf, c);
                prop_assert_eq!(&buf, &reference, "{} len {}", kernel, len);
            }
        }
    }
}

/// Every one of the 255 nonzero scalars has a two-sided inverse, and the
/// log/exp tables are mutually consistent over the whole field.
#[test]
fn all_nonzero_scalars_have_inverses() {
    for a in 1..=255u8 {
        let ai = inv(a);
        assert_ne!(ai, 0, "inv({a})");
        assert_eq!(mul(a, ai), 1, "a · a⁻¹ for a = {a}");
        assert_eq!(mul(ai, a), 1, "a⁻¹ · a for a = {a}");
        assert_eq!(EXP[LOG[a as usize] as usize], a, "exp(log({a}))");
    }
}

/// Exhaustive distributivity over a full axis: for every scalar `c`,
/// `c ⊙ (x ⊕ y) = c ⊙ x ⊕ c ⊙ y` on a buffer covering all byte values.
#[test]
fn add_scaled_matches_mul_per_byte_for_all_scalars() {
    let x: Vec<u8> = (0..=255u8).collect();
    let y: Vec<u8> = (0..=255u8).rev().collect();
    for c in 0..=255u8 {
        let mut acc: Vec<u8> = x.iter().zip(&y).map(|(&a, &b)| a ^ b).collect();
        // acc = c ⊙ (x ⊕ y) …
        mul_slice_with(Gf256Kernel::Scalar, &mut acc, c);
        // … must equal (c ⊙ x) ⊕ (c ⊙ y), built byte-by-byte from `mul`.
        let expect: Vec<u8> = x
            .iter()
            .zip(&y)
            .map(|(&a, &b)| mul(c, a) ^ mul(c, b))
            .collect();
        assert_eq!(acc, expect, "c = {c}");
    }
}
