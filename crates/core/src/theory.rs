//! Closed-form Coded MapReduce theory (paper §II).
//!
//! These are the formulas behind Fig. 2 and eqs. (2)–(5): the
//! computation/communication tradeoff `L(r)`, the predicted execution time
//! under a computation load `r`, and the optimal choice `r*`. The benchmark
//! harness plots them next to loads *measured* from real engine runs.

/// Communication load of an **uncoded** scheme with computation load `r`
/// (each file mapped on `r` nodes, shuffling by unicast):
/// `L_uncoded(r) = 1 − r/K`, normalized by `Q·N` as in the paper.
///
/// `r = 1` is conventional TeraSort: `(K−1)/K` of all intermediate data
/// crosses the network.
///
/// # Panics
/// Panics unless `1 ≤ r ≤ k`.
pub fn uncoded_comm_load(r: usize, k: usize) -> f64 {
    assert!(k >= 1 && (1..=k).contains(&r), "need 1 <= r <= K");
    1.0 - r as f64 / k as f64
}

/// Communication load of **Coded MapReduce** (paper eq. (2)):
/// `L_CMR(r) = (1/r)·(1 − r/K)` — exactly `r×` below the uncoded load, and
/// information-theoretically optimal.
///
/// # Panics
/// Panics unless `1 ≤ r ≤ k`.
pub fn coded_comm_load(r: usize, k: usize) -> f64 {
    uncoded_comm_load(r, k) / r as f64
}

/// Communication load of the pod-partitioned *scalable coding* variant
/// (§VI extension): coding within pods of size `g`, uncoded across pods:
/// `L_pod = (g/K)·(1/r)(1 − r/g) + (1 − g/K)`.
///
/// Setting `g = K` recovers [`coded_comm_load`]; `r = 1` recovers the
/// uncoded TeraSort load for any `g`.
///
/// # Panics
/// Panics unless `r < g`, `g ≤ k`, and `g` divides `k`.
pub fn pod_comm_load(r: usize, k: usize, g: usize) -> f64 {
    assert!(
        g >= 1 && g <= k && k.is_multiple_of(g),
        "pod size must divide K"
    );
    assert!((1..g).contains(&r) || (r == 1 && g == 1), "need 1 <= r < g");
    let in_pod = (g as f64 / k as f64) * (1.0 - r as f64 / g as f64) / r as f64;
    let cross = 1.0 - g as f64 / k as f64;
    in_pod + cross
}

/// Predicted total execution time of CMR with computation load `r`
/// (paper eq. (4)): `r·T_map + T_shuffle/r + T_reduce`, where the `T`s are
/// the *baseline* (r = 1) stage times.
pub fn predicted_total_time(r: usize, t_map: f64, t_shuffle: f64, t_reduce: f64) -> f64 {
    assert!(r >= 1);
    r as f64 * t_map + t_shuffle / r as f64 + t_reduce
}

/// The real-valued minimizer `√(T_shuffle / T_map)` of eq. (4).
pub fn optimal_r_real(t_map: f64, t_shuffle: f64) -> f64 {
    assert!(t_map > 0.0 && t_shuffle >= 0.0);
    (t_shuffle / t_map).sqrt()
}

/// The integer `r* ∈ {1, …, K}` minimizing predicted total time — the
/// paper's `⌊√(Ts/Tm)⌋ or ⌈√(Ts/Tm)⌉` rule, clamped to the valid range and
/// broken by evaluating eq. (4).
pub fn optimal_r(t_map: f64, t_shuffle: f64, t_reduce: f64, k: usize) -> usize {
    assert!(k >= 1);
    let root = optimal_r_real(t_map, t_shuffle);
    let lo = (root.floor() as usize).clamp(1, k);
    let hi = (root.ceil() as usize).clamp(1, k);
    let t_lo = predicted_total_time(lo, t_map, t_shuffle, t_reduce);
    let t_hi = predicted_total_time(hi, t_map, t_shuffle, t_reduce);
    if t_lo <= t_hi {
        lo
    } else {
        hi
    }
}

/// Predicted *optimal* total time (paper eq. (5)):
/// `2·√(T_shuffle·T_map) + T_reduce` — what an unconstrained real `r` would
/// achieve.
pub fn predicted_optimal_time(t_map: f64, t_shuffle: f64, t_reduce: f64) -> f64 {
    2.0 * (t_shuffle * t_map).sqrt() + t_reduce
}

/// Bytes crossing the network in an uncoded shuffle of `input_bytes` with
/// computation load `r` over `k` nodes: `D·(1 − r/K)`.
pub fn shuffle_bytes_uncoded(input_bytes: u64, r: usize, k: usize) -> u64 {
    (input_bytes as f64 * uncoded_comm_load(r, k)).round() as u64
}

/// Bytes crossing the network in the coded shuffle: `D·(1 − r/K)/r`.
pub fn shuffle_bytes_coded(input_bytes: u64, r: usize, k: usize) -> u64 {
    (input_bytes as f64 * coded_comm_load(r, k)).round() as u64
}

/// Theoretical end-to-end speedup of CMR at load `r` over the `r = 1`
/// baseline, per eqs. (3)/(4).
pub fn predicted_speedup(r: usize, t_map: f64, t_shuffle: f64, t_reduce: f64) -> f64 {
    let base = t_map + t_shuffle + t_reduce;
    base / predicted_total_time(r, t_map, t_shuffle, t_reduce)
}

/// The storage bound on `r` (paper footnote 6): each input byte is stored
/// on `r` nodes, so `r ≤ K·(per-node storage)/(input size)`. Returns the
/// largest admissible `r` in `1..=k`, or `None` if even `r = 1` does not
/// fit.
pub fn max_r_for_storage(input_bytes: u64, per_node_storage_bytes: u64, k: usize) -> Option<usize> {
    assert!(k >= 1);
    if input_bytes == 0 {
        return Some(k);
    }
    let total = per_node_storage_bytes as u128 * k as u128;
    let r = (total / input_bytes as u128) as usize;
    if r == 0 {
        None
    } else {
        Some(r.min(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn loads_match_paper_examples() {
        // Fig. 1 example: K = 3, N = 6, Q = 3. Uncoded r=1: each node needs
        // 4 of 6·3 = 18 intermediates → 12/18 = 2/3 = 1 - 1/3. ✓
        assert!((uncoded_comm_load(1, 3) - 2.0 / 3.0).abs() < EPS);
        // r=2 uncoded: 6/18 = 1/3. Coded: 3/18 = 1/6.
        assert!((uncoded_comm_load(2, 3) - 1.0 / 3.0).abs() < EPS);
        assert!((coded_comm_load(2, 3) - 1.0 / 6.0).abs() < EPS);
    }

    #[test]
    fn coded_is_exactly_r_times_smaller() {
        for k in 2..=20usize {
            for r in 1..=k {
                let gain = uncoded_comm_load(r, k) / coded_comm_load(r, k).max(EPS);
                if r < k {
                    assert!((gain - r as f64).abs() < 1e-9, "k={k} r={r}");
                } else {
                    assert_eq!(uncoded_comm_load(r, k), 0.0);
                }
            }
        }
    }

    #[test]
    fn load_is_monotone_decreasing_in_r() {
        for k in [10usize, 16, 20] {
            let mut last = f64::INFINITY;
            for r in 1..=k {
                let l = coded_comm_load(r, k);
                assert!(l < last);
                last = l;
            }
            assert_eq!(coded_comm_load(k, k), 0.0);
        }
    }

    #[test]
    fn pod_load_limits() {
        // g = K recovers the flat coded load.
        assert!((pod_comm_load(3, 16, 16) - coded_comm_load(3, 16)).abs() < EPS);
        // r = 1 recovers the TeraSort load regardless of pods.
        for g in [2usize, 4, 8] {
            assert!((pod_comm_load(1, 16, g) - uncoded_comm_load(1, 16)).abs() < EPS);
        }
        // Pods trade load for CodeGen: load is between flat-coded and uncoded.
        let l = pod_comm_load(3, 20, 10);
        assert!(l > coded_comm_load(3, 20));
        assert!(l < uncoded_comm_load(1, 20));
    }

    #[test]
    fn table1_predicts_r23_and_10x() {
        // Paper §III-B: Tmap = 1.86, Tshuffle = 945.72 → r* = ⌈22.55⌉ = 23,
        // and ~10× predicted saving.
        let (tm, ts, tr) = (1.86, 945.72, 10.47 + 2.35 + 0.85);
        let root = optimal_r_real(tm, ts);
        assert_eq!(root.ceil() as usize, 23);
        let r_star = optimal_r(tm, ts, tr, 64);
        assert!((22..=23).contains(&r_star));
        let speedup = (tm + ts + tr) / predicted_optimal_time(tm, ts, tr);
        assert!(speedup > 9.0 && speedup < 12.0, "speedup {speedup}");
    }

    #[test]
    fn optimal_r_is_clamped_to_k() {
        // With shuffle ≫ map the unconstrained r* exceeds K; must clamp.
        assert_eq!(optimal_r(1.0, 1e6, 0.0, 16), 16);
        assert_eq!(optimal_r(1e6, 1.0, 0.0, 16), 1);
    }

    #[test]
    fn optimal_r_beats_neighbors() {
        let (tm, ts, tr) = (2.0, 100.0, 5.0);
        let k = 20;
        let r = optimal_r(tm, ts, tr, k);
        let t = predicted_total_time(r, tm, ts, tr);
        for cand in 1..=k {
            assert!(t <= predicted_total_time(cand, tm, ts, tr) + EPS);
        }
    }

    #[test]
    fn shuffle_bytes_formulas() {
        let d = 12_000_000_000u64; // the paper's 12 GB
        assert_eq!(shuffle_bytes_uncoded(d, 1, 16), 11_250_000_000);
        // r=3, K=16: (13/16)/3 = 0.27083…
        assert_eq!(shuffle_bytes_coded(d, 3, 16), 3_250_000_000);
        assert_eq!(shuffle_bytes_coded(d, 16, 16), 0);
    }

    #[test]
    fn storage_bound_footnote6() {
        // 16 workers with 32 GB SSDs and 12 GB of input: r ≤ 42 → clamped
        // to K. With 2 GB per node: r ≤ ⌊32/12⌋ = 2.
        assert_eq!(
            max_r_for_storage(12_000_000_000, 32_000_000_000, 16),
            Some(16)
        );
        assert_eq!(
            max_r_for_storage(12_000_000_000, 2_000_000_000, 16),
            Some(2)
        );
        // Input larger than the cluster's total storage: nothing fits.
        assert_eq!(max_r_for_storage(100, 5, 16), None);
        // Empty input always fits.
        assert_eq!(max_r_for_storage(0, 1, 8), Some(8));
    }

    #[test]
    fn predicted_speedup_above_one_when_shuffle_dominates() {
        let s = predicted_speedup(3, 1.86, 945.72, 10.47);
        assert!(s > 2.5, "speedup {s}");
        // No gain when map dominates.
        let s = predicted_speedup(3, 100.0, 1.0, 1.0);
        assert!(s < 1.0);
    }
}
