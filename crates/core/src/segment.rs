//! Deterministic segment splitting (paper eq. (7)).
//!
//! Before encoding, every needed intermediate value `I^t_F` is "evenly and
//! arbitrarily split into r segments `{I^t_{F,k} : k ∈ F}`". *Arbitrarily*
//! in the paper means the split is a design choice — but encoder and decoder
//! must agree on it exactly. Our convention:
//!
//! * the byte buffer is cut into `r` contiguous chunks;
//! * the first `len % r` chunks have `⌈len/r⌉` bytes, the rest `⌊len/r⌋`;
//! * chunk `p` belongs to the node at ascending position `p` within `F`.
//!
//! Splitting happens on *serialized* intermediates, so chunk boundaries may
//! fall inside a KV pair — harmless, because segments are re-concatenated
//! before deserialization (paper §IV-E "merge them back").

use crate::subset::{NodeId, NodeSet};

/// The byte range `[offset, offset + len)` of one segment within its parent
/// intermediate value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentSpan {
    /// Byte offset of the segment in the serialized intermediate.
    pub offset: usize,
    /// Byte length of the segment.
    pub len: usize,
}

/// Computes the span of the segment at `position` (0-based) when a buffer of
/// `total_len` bytes is split into `parts` segments.
///
/// # Panics
/// Panics if `parts == 0` or `position >= parts`.
///
/// ```
/// use cts_core::segment::segment_span;
/// // 10 bytes into 3 parts: 4 + 3 + 3.
/// assert_eq!(segment_span(10, 3, 0).len, 4);
/// assert_eq!(segment_span(10, 3, 1).len, 3);
/// assert_eq!(segment_span(10, 3, 2).offset, 7);
/// ```
pub fn segment_span(total_len: usize, parts: usize, position: usize) -> SegmentSpan {
    assert!(parts > 0, "cannot split into zero parts");
    assert!(position < parts, "segment position out of range");
    let base = total_len / parts;
    let extra = total_len % parts;
    if position < extra {
        SegmentSpan {
            offset: position * (base + 1),
            len: base + 1,
        }
    } else {
        SegmentSpan {
            offset: extra * (base + 1) + (position - extra) * base,
            len: base,
        }
    }
}

/// The span of the segment of `I^t_F` addressed to `node`, where `node ∈ F`
/// and `F` has `r` members: chunk index = `F.position_of(node)`.
///
/// # Panics
/// Panics if `node ∉ F`.
pub fn segment_for_node(total_len: usize, file: NodeSet, node: NodeId) -> SegmentSpan {
    let position = file
        .position_of(node)
        .unwrap_or_else(|| panic!("node {node} not in file set {file}"));
    segment_span(total_len, file.len(), position)
}

/// Slices the segment of `data` addressed to `node` within file set `file`.
pub fn segment_slice(data: &[u8], file: NodeSet, node: NodeId) -> &[u8] {
    let span = segment_for_node(data.len(), file, node);
    &data[span.offset..span.offset + span.len]
}

/// The maximum segment length when `total_len` bytes are split into `parts`
/// (`⌈total_len / parts⌉`) — the zero-padded packet payload contribution.
#[inline]
pub fn max_segment_len(total_len: usize, parts: usize) -> usize {
    total_len.div_ceil(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_tile_the_buffer_exactly() {
        for total in [0usize, 1, 2, 5, 9, 10, 11, 100, 997] {
            for parts in 1..=8usize {
                let mut cursor = 0usize;
                for p in 0..parts {
                    let s = segment_span(total, parts, p);
                    assert_eq!(s.offset, cursor, "total {total} parts {parts} p {p}");
                    cursor += s.len;
                }
                assert_eq!(cursor, total);
            }
        }
    }

    #[test]
    fn spans_differ_by_at_most_one() {
        for total in [7usize, 23, 100] {
            for parts in 1..=6usize {
                let lens: Vec<usize> = (0..parts)
                    .map(|p| segment_span(total, parts, p).len)
                    .collect();
                let mn = *lens.iter().min().unwrap();
                let mx = *lens.iter().max().unwrap();
                assert!(mx - mn <= 1);
                assert_eq!(mx, max_segment_len(total, parts));
            }
        }
    }

    #[test]
    fn longer_chunks_come_first() {
        // 11 into 4: 3,3,3,2.
        let lens: Vec<usize> = (0..4).map(|p| segment_span(11, 4, p).len).collect();
        assert_eq!(lens, vec![3, 3, 3, 2]);
    }

    #[test]
    fn segment_for_node_uses_ascending_position() {
        let file = NodeSet::from_iter([2usize, 5, 7]);
        let total = 10usize; // chunks 4,3,3
        assert_eq!(
            segment_for_node(total, file, 2),
            SegmentSpan { offset: 0, len: 4 }
        );
        assert_eq!(
            segment_for_node(total, file, 5),
            SegmentSpan { offset: 4, len: 3 }
        );
        assert_eq!(
            segment_for_node(total, file, 7),
            SegmentSpan { offset: 7, len: 3 }
        );
    }

    #[test]
    #[should_panic(expected = "not in file set")]
    fn segment_for_node_rejects_non_member() {
        segment_for_node(10, NodeSet::from_iter([1usize, 2]), 0);
    }

    #[test]
    fn segment_slice_matches_manual_split() {
        let data: Vec<u8> = (0..23u8).collect();
        let file = NodeSet::from_iter([0usize, 3, 9]);
        let a = segment_slice(&data, file, 0);
        let b = segment_slice(&data, file, 3);
        let c = segment_slice(&data, file, 9);
        let mut rejoined = a.to_vec();
        rejoined.extend_from_slice(b);
        rejoined.extend_from_slice(c);
        assert_eq!(rejoined, data);
    }

    #[test]
    fn empty_intermediate_yields_empty_segments() {
        let file = NodeSet::from_iter([0usize, 1, 2]);
        for n in [0usize, 1, 2] {
            assert_eq!(segment_for_node(0, file, n).len, 0);
        }
        assert_eq!(max_segment_len(0, 3), 0);
    }
}
