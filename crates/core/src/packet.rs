//! Coded packet structure and wire format.
//!
//! A [`CodedPacket`] is the unit of multicast in the coded shuffle: the XOR
//! of `r` zero-padded segments (paper eq. (8)) plus the header metadata the
//! receivers need to trim padding and attribute the recovered segment. The
//! wire format is a compact little-endian layout with full structural
//! validation on parse, so a corrupted or truncated packet is reported as a
//! [`CodedError::MalformedPacket`] instead of garbage data.

use crate::error::{CodedError, Result};
use crate::subset::{NodeId, NodeSet};

/// Format version written into every serialized packet.
pub const WIRE_VERSION: u8 = 1;

/// Magic bytes prefixing every serialized packet (`"CT"`).
pub const WIRE_MAGIC: [u8; 2] = *b"CT";

/// One coded multicast packet `E_{M,k}` (paper eq. (8)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodedPacket {
    /// The multicast group `M` this packet belongs to.
    pub group: NodeSet,
    /// The sender `k ∈ M`.
    pub sender: NodeId,
    /// For each other member `t ∈ M\{k}` (ascending), the *original* length
    /// of the segment `I^t_{M\{t},k}` folded into the payload. Receiver `t`
    /// reads its own entry to strip zero padding from the recovered segment.
    pub seg_lens: Vec<(NodeId, u32)>,
    /// XOR of the `r` zero-padded segments; length = max original length.
    pub payload: Vec<u8>,
}

impl CodedPacket {
    /// Total serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        2 + 1 + 2 + 8 + 2 + self.seg_lens.len() * 6 + 4 + self.payload.len()
    }

    /// The original segment length recorded for receiver `t`, if present.
    pub fn seg_len_for(&self, t: NodeId) -> Option<u32> {
        self.seg_lens
            .iter()
            .find(|(node, _)| *node == t)
            .map(|(_, len)| *len)
    }

    /// Serializes to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&WIRE_MAGIC);
        out.push(WIRE_VERSION);
        out.extend_from_slice(&(self.sender as u16).to_le_bytes());
        out.extend_from_slice(&self.group.bits().to_le_bytes());
        out.extend_from_slice(&(self.seg_lens.len() as u16).to_le_bytes());
        for (t, len) in &self.seg_lens {
            out.extend_from_slice(&(*t as u16).to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a packet from the wire format, validating structure:
    /// magic/version, sender membership, header/segment consistency, and
    /// that the payload length equals the longest recorded segment.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut cursor = Cursor::new(buf);
        let magic = cursor.take(2)?;
        if magic != WIRE_MAGIC {
            return Err(malformed("bad magic"));
        }
        let version = cursor.u8()?;
        if version != WIRE_VERSION {
            return Err(malformed(format!("unsupported version {version}")));
        }
        let sender = cursor.u16()? as NodeId;
        let group = NodeSet::from_bits(cursor.u64()?);
        if !group.contains(sender) {
            return Err(malformed(format!("sender {sender} not in group {group}")));
        }
        let nseg = cursor.u16()? as usize;
        if nseg != group.len().saturating_sub(1) {
            return Err(malformed(format!(
                "{nseg} segment lengths for group of {} members",
                group.len()
            )));
        }
        let mut seg_lens = Vec::with_capacity(nseg);
        let mut prev: Option<NodeId> = None;
        for _ in 0..nseg {
            let t = cursor.u16()? as NodeId;
            let len = cursor.u32()?;
            if !group.contains(t) || t == sender {
                return Err(malformed(format!("segment target {t} invalid for {group}")));
            }
            if let Some(p) = prev {
                if t <= p {
                    return Err(malformed("segment targets not strictly ascending"));
                }
            }
            prev = Some(t);
            seg_lens.push((t, len));
        }
        let payload_len = cursor.u32()? as usize;
        let payload = cursor.take(payload_len)?.to_vec();
        if cursor.remaining() != 0 {
            return Err(malformed(format!("{} trailing bytes", cursor.remaining())));
        }
        // Payload must be padded to exactly the longest segment.
        let max_seg = seg_lens.iter().map(|(_, l)| *l).max().unwrap_or(0) as usize;
        if payload.len() != max_seg {
            return Err(malformed(format!(
                "payload {} bytes but longest segment is {}",
                payload.len(),
                max_seg
            )));
        }
        Ok(CodedPacket {
            group,
            sender,
            seg_lens,
            payload,
        })
    }
}

fn malformed(what: impl Into<String>) -> CodedError {
    CodedError::MalformedPacket { what: what.into() }
}

/// Minimal checked little-endian reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(malformed(format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CodedPacket {
        CodedPacket {
            group: NodeSet::from_iter([0usize, 1, 2]),
            sender: 0,
            seg_lens: vec![(1, 3), (2, 5)],
            payload: vec![0xAA, 0xBB, 0xCC, 0xDD, 0xEE],
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.wire_len());
        let q = CodedPacket::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_empty_payload() {
        let p = CodedPacket {
            group: NodeSet::from_iter([3usize, 7]),
            sender: 7,
            seg_lens: vec![(3, 0)],
            payload: vec![],
        };
        let q = CodedPacket::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn seg_len_for_lookup() {
        let p = sample();
        assert_eq!(p.seg_len_for(1), Some(3));
        assert_eq!(p.seg_len_for(2), Some(5));
        assert_eq!(p.seg_len_for(0), None);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            CodedPacket::from_bytes(&bytes),
            Err(CodedError::MalformedPacket { .. })
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = sample().to_bytes();
        bytes[2] = 99;
        let err = CodedPacket::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CodedPacket::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        let err = CodedPacket::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn rejects_sender_outside_group() {
        let mut p = sample();
        p.sender = 5;
        let err = CodedPacket::from_bytes(&p.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("sender"));
    }

    #[test]
    fn rejects_wrong_payload_length() {
        let mut p = sample();
        p.payload.push(0); // longer than longest segment
        let err = CodedPacket::from_bytes(&p.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("payload"));
    }

    #[test]
    fn rejects_unsorted_targets() {
        let mut p = sample();
        p.seg_lens.swap(0, 1);
        let err = CodedPacket::from_bytes(&p.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("ascending"));
    }

    #[test]
    fn rejects_segment_count_mismatch() {
        let mut p = sample();
        p.seg_lens.pop();
        p.payload.truncate(3);
        let err = CodedPacket::from_bytes(&p.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("segment lengths"));
    }
}
