//! Coded packet structure and wire format.
//!
//! A [`CodedPacket`] is the unit of multicast in the coded shuffle: the XOR
//! of `r` zero-padded segments (paper eq. (8)) plus the header metadata the
//! receivers need to trim padding and attribute the recovered segment. The
//! wire format is a compact little-endian layout with full structural
//! validation on parse, so a corrupted or truncated packet is reported as a
//! [`CodedError::MalformedPacket`] instead of garbage data.
//!
//! The hot-path APIs are allocation-aware:
//!
//! * [`CodedPacket::write_wire`] serializes straight from the encoder's
//!   scratch buffers into a reusable output `Vec` — no `CodedPacket` is
//!   ever materialized on the send side;
//! * [`CodedPacket::read_wire`] parses *zero-copy*: the payload is a
//!   [`Bytes`] slice borrowing the received frame's allocation, and the
//!   header vector of a warm packet is reused across packets.

use bytes::Bytes;

use crate::error::{CodedError, Result};
use crate::segment::max_segment_len;
use crate::solve::mds_parts;
use crate::subset::{NodeId, NodeSet};

/// Format version of classic cancel-and-divide packets.
pub const WIRE_VERSION: u8 = 1;

/// Format version of MDS-mixed packets (quorum decode): the `seg_lens`
/// entries carry the *total* intermediate length per target (identical
/// across the senders of a group), and the payload is the Vandermonde mix
/// of [`mds_parts`] zero-padded parts — see [`crate::solve`].
pub const WIRE_VERSION_MDS: u8 = 2;

/// Magic bytes prefixing every serialized packet (`"CT"`).
pub const WIRE_MAGIC: [u8; 2] = *b"CT";

/// One coded multicast packet `E_{M,k}` (paper eq. (8)).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CodedPacket {
    /// The multicast group `M` this packet belongs to.
    pub group: NodeSet,
    /// The sender `k ∈ M`.
    pub sender: NodeId,
    /// For each other member `t ∈ M\{k}` (ascending), the *original* length
    /// of the segment `I^t_{M\{t},k}` folded into the payload. Receiver `t`
    /// reads its own entry to strip zero padding from the recovered segment.
    /// In MDS packets (`mds = true`) the entry is instead the total length
    /// of `I^t_{M\{t}}` — any single packet tells a receiver its full
    /// reconstruction size, which matters when a sender never delivers.
    pub seg_lens: Vec<(NodeId, u32)>,
    /// XOR of the `r` zero-padded segments; length = max original length.
    /// A [`Bytes`] view so parsed packets can borrow the received frame
    /// instead of copying it.
    pub payload: Bytes,
    /// Whether this is an MDS-mixed packet ([`WIRE_VERSION_MDS`]) feeding
    /// the per-group solver instead of cancel-and-divide.
    pub mds: bool,
}

impl CodedPacket {
    /// An empty packet shell, ready to be filled by
    /// [`read_wire`](CodedPacket::read_wire) — reuse one shell across a
    /// receive loop to keep the parse allocation-free.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Total serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        wire_len_for(self.seg_lens.len(), self.payload.len())
    }

    /// The original segment length recorded for receiver `t`, if present.
    pub fn seg_len_for(&self, t: NodeId) -> Option<u32> {
        self.seg_lens
            .iter()
            .find(|(node, _)| *node == t)
            .map(|(_, len)| *len)
    }

    /// Serializes to the wire format (convenience wrapper over
    /// [`write_into`](CodedPacket::write_into)).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.write_into(&mut out);
        out
    }

    /// Appends the wire format to `out`. Reusing one grow-only `out`
    /// across packets keeps serialization allocation-free in steady state.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        let version = if self.mds {
            WIRE_VERSION_MDS
        } else {
            WIRE_VERSION
        };
        write_wire_versioned(
            version,
            self.group,
            self.sender,
            &self.seg_lens,
            &self.payload,
            out,
        );
    }

    /// Serializes a classic (version 1) packet directly from its parts —
    /// the encoder hot path, which writes from scratch buffers without
    /// building a `CodedPacket`. Appends to `out`.
    pub fn write_wire(
        group: NodeSet,
        sender: NodeId,
        seg_lens: &[(NodeId, u32)],
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        write_wire_versioned(WIRE_VERSION, group, sender, seg_lens, payload, out);
    }

    /// Serializes an MDS-mixed (version 2) packet directly from its parts.
    /// Appends to `out`.
    pub fn write_wire_mds(
        group: NodeSet,
        sender: NodeId,
        seg_lens: &[(NodeId, u32)],
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        write_wire_versioned(WIRE_VERSION_MDS, group, sender, seg_lens, payload, out);
    }

    /// Parses a packet from the wire format, validating structure:
    /// magic/version, sender membership, header/segment consistency, and
    /// that the payload length equals the longest recorded segment.
    ///
    /// This variant copies the payload out of `buf`; prefer
    /// [`from_wire`](CodedPacket::from_wire) when the frame is already a
    /// [`Bytes`] (as everything received from a fabric is).
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut packet = CodedPacket::empty();
        let (start, end) = packet.parse_header(buf)?;
        packet.payload = Bytes::copy_from_slice(&buf[start..end]);
        Ok(packet)
    }

    /// Zero-copy parse: identical validation to
    /// [`from_bytes`](CodedPacket::from_bytes), but the payload *borrows*
    /// `wire`'s allocation as a [`Bytes`] slice instead of copying.
    pub fn from_wire(wire: &Bytes) -> Result<Self> {
        let mut packet = CodedPacket::empty();
        packet.read_wire(wire)?;
        Ok(packet)
    }

    /// Zero-copy, zero-allocation parse into an existing packet shell: the
    /// payload borrows `wire` and the warm `seg_lens` vector is reused.
    ///
    /// # Errors
    /// `MalformedPacket` exactly as [`from_bytes`](CodedPacket::from_bytes);
    /// on error the shell's contents are unspecified.
    pub fn read_wire(&mut self, wire: &Bytes) -> Result<()> {
        let (start, end) = self.parse_header(wire)?;
        self.payload = wire.slice(start..end);
        Ok(())
    }

    /// Parses and validates everything but the payload bytes into `self`,
    /// returning the payload's `[start, end)` range within `buf`.
    fn parse_header(&mut self, buf: &[u8]) -> Result<(usize, usize)> {
        let mut cursor = Cursor::new(buf);
        let magic = cursor.take(2)?;
        if magic != WIRE_MAGIC {
            return Err(malformed("bad magic"));
        }
        let version = cursor.u8()?;
        if version != WIRE_VERSION && version != WIRE_VERSION_MDS {
            return Err(malformed(format!("unsupported version {version}")));
        }
        let sender = cursor.u16()? as NodeId;
        let group = NodeSet::from_bits(cursor.u64()?);
        if !group.contains(sender) {
            return Err(malformed(format!("sender {sender} not in group {group}")));
        }
        let nseg = cursor.u16()? as usize;
        if nseg != group.len().saturating_sub(1) {
            return Err(malformed(format!(
                "{nseg} segment lengths for group of {} members",
                group.len()
            )));
        }
        self.seg_lens.clear();
        self.seg_lens.reserve(nseg);
        let mut prev: Option<NodeId> = None;
        for _ in 0..nseg {
            let t = cursor.u16()? as NodeId;
            let len = cursor.u32()?;
            if !group.contains(t) || t == sender {
                return Err(malformed(format!("segment target {t} invalid for {group}")));
            }
            if let Some(p) = prev {
                if t <= p {
                    return Err(malformed("segment targets not strictly ascending"));
                }
            }
            prev = Some(t);
            self.seg_lens.push((t, len));
        }
        let payload_len = cursor.u32()? as usize;
        let start = cursor.pos;
        cursor.take(payload_len)?;
        if cursor.remaining() != 0 {
            return Err(malformed(format!("{} trailing bytes", cursor.remaining())));
        }
        let expected = if version == WIRE_VERSION_MDS {
            // MDS mix: each target contributes `mds_parts` zero-padded
            // parts of its total, so the payload is the longest part-0
            // span across targets.
            let s = mds_parts(group.len());
            self.seg_lens
                .iter()
                .map(|(_, l)| max_segment_len(*l as usize, s))
                .max()
                .unwrap_or(0)
        } else {
            // Payload must be padded to exactly the longest segment.
            self.seg_lens.iter().map(|(_, l)| *l).max().unwrap_or(0) as usize
        };
        if payload_len != expected {
            return Err(malformed(format!(
                "payload {payload_len} bytes but expected {expected} (version {version})",
            )));
        }
        self.group = group;
        self.sender = sender;
        self.mds = version == WIRE_VERSION_MDS;
        Ok((start, start + payload_len))
    }
}

fn write_wire_versioned(
    version: u8,
    group: NodeSet,
    sender: NodeId,
    seg_lens: &[(NodeId, u32)],
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    out.reserve(wire_len_for(seg_lens.len(), payload.len()));
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(version);
    out.extend_from_slice(&(sender as u16).to_le_bytes());
    out.extend_from_slice(&group.bits().to_le_bytes());
    out.extend_from_slice(&(seg_lens.len() as u16).to_le_bytes());
    for (t, len) in seg_lens {
        out.extend_from_slice(&(*t as u16).to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serialized size of a packet with `nseg` segment entries and a
/// `payload_len`-byte payload.
fn wire_len_for(nseg: usize, payload_len: usize) -> usize {
    2 + 1 + 2 + 8 + 2 + nseg * 6 + 4 + payload_len
}

fn malformed(what: impl Into<String>) -> CodedError {
    CodedError::MalformedPacket { what: what.into() }
}

/// Minimal checked little-endian reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(malformed(format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CodedPacket {
        CodedPacket {
            group: NodeSet::from_iter([0usize, 1, 2]),
            sender: 0,
            seg_lens: vec![(1, 3), (2, 5)],
            payload: Bytes::from(vec![0xAA, 0xBB, 0xCC, 0xDD, 0xEE]),
            mds: false,
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.wire_len());
        let q = CodedPacket::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_empty_payload() {
        let p = CodedPacket {
            group: NodeSet::from_iter([3usize, 7]),
            sender: 7,
            seg_lens: vec![(3, 0)],
            payload: Bytes::new(),
            mds: false,
        };
        let q = CodedPacket::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn zero_copy_parse_borrows_frame() {
        let p = sample();
        let wire = Bytes::from(p.to_bytes());
        let q = CodedPacket::from_wire(&wire).unwrap();
        assert_eq!(p, q);
        // The payload points into the wire frame's allocation.
        let payload_start = wire.len() - p.payload.len();
        assert_eq!(q.payload.as_ptr(), wire[payload_start..].as_ptr());
    }

    #[test]
    fn read_wire_reuses_shell() {
        let a = sample();
        let mut b = CodedPacket {
            group: NodeSet::from_iter([5usize, 6]),
            sender: 5,
            seg_lens: vec![(6, 1)],
            payload: Bytes::from(vec![9]),
            mds: false,
        };
        let wire_a = Bytes::from(a.to_bytes());
        let wire_b = Bytes::from(b.to_bytes());
        let mut shell = CodedPacket::empty();
        shell.read_wire(&wire_a).unwrap();
        assert_eq!(shell, a);
        shell.read_wire(&wire_b).unwrap();
        b.payload = wire_b.slice(wire_b.len() - 1..);
        assert_eq!(shell, b);
    }

    #[test]
    fn write_into_appends_and_matches_to_bytes() {
        let p = sample();
        let mut out = vec![0xFFu8; 3];
        p.write_into(&mut out);
        assert_eq!(&out[..3], &[0xFF; 3]);
        assert_eq!(&out[3..], &p.to_bytes()[..]);
    }

    #[test]
    fn write_wire_matches_packet_serialization() {
        let p = sample();
        let mut out = Vec::new();
        CodedPacket::write_wire(p.group, p.sender, &p.seg_lens, &p.payload, &mut out);
        assert_eq!(out, p.to_bytes());
    }

    #[test]
    fn seg_len_for_lookup() {
        let p = sample();
        assert_eq!(p.seg_len_for(1), Some(3));
        assert_eq!(p.seg_len_for(2), Some(5));
        assert_eq!(p.seg_len_for(0), None);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            CodedPacket::from_bytes(&bytes),
            Err(CodedError::MalformedPacket { .. })
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = sample().to_bytes();
        bytes[2] = 99;
        let err = CodedPacket::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CodedPacket::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
            // The zero-copy parser enforces the same structure.
            let wire = Bytes::from(bytes[..cut].to_vec());
            assert!(CodedPacket::from_wire(&wire).is_err(), "wire cut at {cut}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        let err = CodedPacket::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn rejects_sender_outside_group() {
        let mut p = sample();
        p.sender = 5;
        let err = CodedPacket::from_bytes(&p.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("sender"));
    }

    #[test]
    fn rejects_wrong_payload_length() {
        let mut p = sample();
        // Payload longer than the longest recorded segment.
        let mut longer = p.payload.to_vec();
        longer.push(0);
        p.payload = Bytes::from(longer);
        let err = CodedPacket::from_bytes(&p.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("payload"));
    }

    #[test]
    fn rejects_unsorted_targets() {
        let mut p = sample();
        p.seg_lens.swap(0, 1);
        let err = CodedPacket::from_bytes(&p.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("ascending"));
    }

    #[test]
    fn mds_roundtrip_and_payload_rule() {
        // Group {0,1,2}: s = mds_parts(3) = 1, totals 3 and 5 → part-0
        // spans 3 and 5, payload = 5.
        let p = CodedPacket {
            group: NodeSet::from_iter([0usize, 1, 2]),
            sender: 0,
            seg_lens: vec![(1, 3), (2, 5)],
            payload: Bytes::from(vec![1, 2, 3, 4, 5]),
            mds: true,
        };
        let bytes = p.to_bytes();
        assert_eq!(bytes[2], WIRE_VERSION_MDS);
        let q = CodedPacket::from_bytes(&bytes).unwrap();
        assert!(q.mds);
        assert_eq!(p, q);
        // A 4-member group splits into s = 2 parts: totals 3 and 5 give
        // part-0 spans of 2 and 3, so a 3-byte payload parses and the
        // 5-byte classic padding does not.
        let mut w = Vec::new();
        let group = NodeSet::from_iter([0usize, 1, 2, 3]);
        let seg_lens = vec![(1u64 as NodeId, 3u32), (2, 5), (3, 4)];
        CodedPacket::write_wire_mds(group, 0, &seg_lens, &[7, 8, 9], &mut w);
        assert!(CodedPacket::from_bytes(&w).unwrap().mds);
        w.clear();
        CodedPacket::write_wire_mds(group, 0, &seg_lens, &[7, 8, 9, 0, 0], &mut w);
        assert!(CodedPacket::from_bytes(&w).is_err());
    }

    #[test]
    fn rejects_segment_count_mismatch() {
        let mut p = sample();
        p.seg_lens.pop();
        p.payload = p.payload.slice(..3);
        let err = CodedPacket::from_bytes(&p.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("segment lengths"));
    }
}
