//! Multicast group enumeration (paper §IV-C/D) and the *scalable coding*
//! extension (paper §VI).
//!
//! Coded exchange happens within every `(r+1)`-subset `M` of nodes: each
//! member multicasts one coded packet to the other `r` members. There are
//! `C(K, r+1)` such groups — the quantity that drives the paper's CodeGen
//! stage cost (observed ≈ 3.3 ms per group on EC2, Tables II–III).
//!
//! The paper's *Scalable Coding* future direction asks for coding procedures
//! whose overhead does not grow as `C(K, r+1)`. [`PodGroups`] implements the
//! natural pod-partitioned variant: nodes are split into disjoint pods of
//! size `g`, and coding is applied only within each pod, shrinking the group
//! count to `(K/g)·C(g, r+1)` at the price of uncoded cross-pod traffic.

use crate::combinatorics::{binomial, colex_rank, colex_unrank, combinations_of, Combinations};
use crate::error::{CodedError, Result};
use crate::subset::{NodeId, NodeSet};

/// Dense identifier of a multicast group; the colex rank of the group's
/// `(r+1)`-subset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GroupId(pub u64);

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Enumeration of the `C(K, r+1)` multicast groups for `(K, r)`.
///
/// Like [`PlacementPlan`](crate::placement::PlacementPlan) this is a pure
/// combinatorial object computed identically on every node during CodeGen.
///
/// ```
/// use cts_core::groups::MulticastGroups;
/// let groups = MulticastGroups::new(16, 3).unwrap();
/// assert_eq!(groups.num_groups(), 1820); // C(16, 4) — paper §V-C
/// assert_eq!(groups.groups_per_node(), 455); // C(15, 3)
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MulticastGroups {
    k: usize,
    r: usize,
}

impl MulticastGroups {
    /// Groups for `K` nodes at redundancy `r`.
    ///
    /// # Errors
    /// `InvalidParameters` under the same conditions as
    /// [`PlacementPlan::new`](crate::placement::PlacementPlan::new). Note
    /// that `r = K` is allowed and yields zero groups (all data is local).
    pub fn new(k: usize, r: usize) -> Result<Self> {
        if k == 0 || k > 64 {
            return Err(CodedError::InvalidParameters {
                what: format!("K must be in 1..=64, got {k}"),
            });
        }
        if r == 0 || r > k {
            return Err(CodedError::InvalidParameters {
                what: format!("r must be in 1..={k}, got {r}"),
            });
        }
        Ok(MulticastGroups { k, r })
    }

    /// Number of nodes `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Redundancy `r`; group size is `r + 1`.
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Members per group (`r + 1`).
    #[inline]
    pub fn group_size(&self) -> usize {
        self.r + 1
    }

    /// Total number of groups, `C(K, r+1)`.
    #[inline]
    pub fn num_groups(&self) -> u64 {
        binomial(self.k as u64, (self.r + 1) as u64)
    }

    /// Number of groups each node belongs to, `C(K-1, r)`.
    #[inline]
    pub fn groups_per_node(&self) -> u64 {
        binomial((self.k - 1) as u64, self.r as u64)
    }

    /// The member set of group `id`.
    ///
    /// # Panics
    /// Panics if `id.0 >= num_groups()`.
    #[inline]
    pub fn members(&self, id: GroupId) -> NodeSet {
        colex_unrank(id.0, self.r + 1, self.k)
    }

    /// The [`GroupId`] of the group with exactly the members `m`.
    ///
    /// # Errors
    /// `InvalidParameters` if `|m| != r+1` or `m ⊄ {0,…,K-1}`.
    pub fn id_of(&self, m: NodeSet) -> Result<GroupId> {
        if m.len() != self.r + 1 || !m.is_subset_of(NodeSet::full(self.k)) {
            return Err(CodedError::InvalidParameters {
                what: format!(
                    "group {m} is not a {}-subset of the {} nodes",
                    self.r + 1,
                    self.k
                ),
            });
        }
        Ok(GroupId(colex_rank(m)))
    }

    /// Iterates all groups in `GroupId` order (the global serial-multicast
    /// schedule order of the paper's Fig. 9(b)).
    pub fn iter_groups(&self) -> impl Iterator<Item = (GroupId, NodeSet)> {
        Combinations::new(self.k, self.r + 1)
            .enumerate()
            .map(|(i, m)| (GroupId(i as u64), m))
    }

    /// Iterates the groups containing `node`, ascending by id.
    ///
    /// # Panics
    /// Panics if `node >= K`.
    pub fn groups_of_node(&self, node: NodeId) -> impl Iterator<Item = (GroupId, NodeSet)> + '_ {
        assert!(node < self.k, "node {node} out of range");
        let rest = NodeSet::full(self.k).without(node);
        let mut all: Vec<(GroupId, NodeSet)> = combinations_of(rest, self.r)
            .map(|s| {
                let m = s.with(node);
                (GroupId(colex_rank(m)), m)
            })
            .collect();
        all.sort_unstable_by_key(|(id, _)| *id);
        all.into_iter()
    }

    /// Number of coded packets each node sends overall: one per group it
    /// belongs to, `C(K-1, r)` (paper §IV-C).
    #[inline]
    pub fn packets_per_node(&self) -> u64 {
        self.groups_per_node()
    }
}

/// Pod-partitioned multicast groups — the *scalable coding* extension.
///
/// The `K` nodes are split into `K / g` disjoint pods of `g` consecutive
/// nodes (requires `g | K` and `r < g`). Coded exchange runs independently
/// inside each pod; intermediate values destined outside a node's pod are
/// shuffled uncoded. Total group count falls from `C(K, r+1)` to
/// `(K/g)·C(g, r+1)`.
///
/// ```
/// use cts_core::groups::PodGroups;
/// // K=20, r=3 coded over pods of 10 → 2·C(10,4) = 420 groups instead of
/// // C(20,4) = 4845: an 11.5× CodeGen reduction.
/// let pods = PodGroups::new(20, 3, 10).unwrap();
/// assert_eq!(pods.num_groups(), 420);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PodGroups {
    k: usize,
    r: usize,
    pod_size: usize,
}

impl PodGroups {
    /// Builds pod groups for `K` nodes, redundancy `r`, pods of `pod_size`.
    ///
    /// # Errors
    /// `InvalidParameters` if `pod_size` does not divide `K`, or
    /// `r >= pod_size`, or the base parameters are invalid.
    pub fn new(k: usize, r: usize, pod_size: usize) -> Result<Self> {
        MulticastGroups::new(k, r)?; // validate k, r
        if pod_size == 0 || !k.is_multiple_of(pod_size) {
            return Err(CodedError::InvalidParameters {
                what: format!("pod size {pod_size} must divide K = {k}"),
            });
        }
        if r >= pod_size {
            return Err(CodedError::InvalidParameters {
                what: format!("r = {r} must be < pod size {pod_size}"),
            });
        }
        Ok(PodGroups { k, r, pod_size })
    }

    /// Number of pods, `K / g`.
    #[inline]
    pub fn num_pods(&self) -> usize {
        self.k / self.pod_size
    }

    /// Pod size `g`.
    #[inline]
    pub fn pod_size(&self) -> usize {
        self.pod_size
    }

    /// Members of pod `p`: nodes `p·g .. (p+1)·g`.
    pub fn pod_members(&self, pod: usize) -> NodeSet {
        assert!(pod < self.num_pods());
        (pod * self.pod_size..(pod + 1) * self.pod_size).collect()
    }

    /// The pod containing `node`.
    #[inline]
    pub fn pod_of(&self, node: NodeId) -> usize {
        assert!(node < self.k);
        node / self.pod_size
    }

    /// Total multicast groups across all pods: `(K/g)·C(g, r+1)`.
    pub fn num_groups(&self) -> u64 {
        self.num_pods() as u64 * binomial(self.pod_size as u64, (self.r + 1) as u64)
    }

    /// Iterates every group of every pod as `(pod, members)`.
    pub fn iter_groups(&self) -> impl Iterator<Item = (usize, NodeSet)> + '_ {
        (0..self.num_pods()).flat_map(move |pod| {
            combinations_of(self.pod_members(pod), self.r + 1).map(move |m| (pod, m))
        })
    }

    /// CodeGen-cost reduction factor vs. the flat scheme,
    /// `C(K, r+1) / ((K/g)·C(g, r+1))`.
    pub fn codegen_reduction(&self) -> f64 {
        let flat = binomial(self.k as u64, (self.r + 1) as u64) as f64;
        flat / self.num_groups() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_counts_match_paper() {
        // Paper §V-C: CodeGen time proportional to C(K, r+1).
        assert_eq!(MulticastGroups::new(16, 3).unwrap().num_groups(), 1820);
        assert_eq!(MulticastGroups::new(16, 5).unwrap().num_groups(), 8008);
        assert_eq!(MulticastGroups::new(20, 3).unwrap().num_groups(), 4845);
        assert_eq!(MulticastGroups::new(20, 5).unwrap().num_groups(), 38760);
    }

    #[test]
    fn id_roundtrip() {
        let g = MulticastGroups::new(8, 3).unwrap();
        for (id, m) in g.iter_groups() {
            assert_eq!(g.members(id), m);
            assert_eq!(g.id_of(m).unwrap(), id);
            assert_eq!(m.len(), 4);
        }
    }

    #[test]
    fn groups_of_node_complete_and_sorted() {
        let g = MulticastGroups::new(7, 2).unwrap();
        for node in 0..7 {
            let list: Vec<(GroupId, NodeSet)> = g.groups_of_node(node).collect();
            assert_eq!(list.len() as u64, g.groups_per_node());
            for w in list.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
            for (_, m) in &list {
                assert!(m.contains(node));
            }
        }
    }

    #[test]
    fn r_equals_k_has_no_groups() {
        let g = MulticastGroups::new(5, 5).unwrap();
        assert_eq!(g.num_groups(), 0);
        assert_eq!(g.iter_groups().count(), 0);
    }

    #[test]
    fn r_equals_k_minus_1_single_group() {
        let g = MulticastGroups::new(5, 4).unwrap();
        assert_eq!(g.num_groups(), 1);
        let (_, m) = g.iter_groups().next().unwrap();
        assert_eq!(m, NodeSet::full(5));
    }

    #[test]
    fn each_group_counted_once_via_nodes() {
        // Σ_node groups_of_node == num_groups * (r+1).
        let g = MulticastGroups::new(9, 3).unwrap();
        let total: u64 = (0..9).map(|n| g.groups_of_node(n).count() as u64).sum();
        assert_eq!(total, g.num_groups() * 4);
    }

    #[test]
    fn id_of_rejects_wrong_size() {
        let g = MulticastGroups::new(6, 2).unwrap();
        assert!(g.id_of(NodeSet::from_iter([0usize, 1])).is_err());
        assert!(g.id_of(NodeSet::from_iter([0usize, 1, 2, 3])).is_err());
        assert!(g.id_of(NodeSet::from_iter([0usize, 1, 6])).is_err());
    }

    #[test]
    fn pods_partition_nodes() {
        let p = PodGroups::new(12, 2, 4).unwrap();
        assert_eq!(p.num_pods(), 3);
        let mut all = NodeSet::EMPTY;
        for pod in 0..3 {
            let m = p.pod_members(pod);
            assert_eq!(m.len(), 4);
            assert!(all.intersection(m).is_empty());
            all = all.union(m);
        }
        assert_eq!(all, NodeSet::full(12));
        for n in 0..12 {
            assert!(p.pod_members(p.pod_of(n)).contains(n));
        }
    }

    #[test]
    fn pod_group_count_and_reduction() {
        let p = PodGroups::new(20, 3, 10).unwrap();
        assert_eq!(p.num_groups(), 2 * binomial(10, 4));
        assert!(p.codegen_reduction() > 11.0);
        assert_eq!(p.iter_groups().count() as u64, p.num_groups());
        for (pod, m) in p.iter_groups() {
            assert!(m.is_subset_of(p.pod_members(pod)));
            assert_eq!(m.len(), 4);
        }
    }

    #[test]
    fn pod_validation() {
        assert!(PodGroups::new(10, 3, 3).is_err()); // 3 ∤ 10
        assert!(PodGroups::new(12, 4, 4).is_err()); // r >= g
        assert!(PodGroups::new(12, 3, 4).is_ok());
    }
}
