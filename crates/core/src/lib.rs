//! # cts-core — the Coded TeraSort coded-shuffle core
//!
//! This crate implements the primary contribution of *Coded TeraSort*
//! (Li, Supittayapornpong, Maddah-Ali, Avestimehr, 2017): a coded data
//! shuffle for MapReduce-style computation that trades `r×` redundant Map
//! computation for an `r×` reduction in shuffle communication.
//!
//! The pieces map one-to-one onto the paper:
//!
//! | Paper | Module |
//! |---|---|
//! | §IV-A structured redundant file placement, eq. (6) | [`placement`] |
//! | multicast groups `M` of size `r+1` | [`groups`] |
//! | segment splitting, eq. (7) | [`segment`] |
//! | §IV-C encoding, eq. (8), Algorithm 1 | [`encode`] |
//! | §IV-E decoding, eq. (10), Algorithm 2 | [`decode`] |
//! | coded packet `E_{M,k}` and wire format | [`packet`] |
//! | §II loads and execution-time theory, eqs. (2)–(5) | [`theory`] |
//! | combinatorial number system underpinning ids | [`combinatorics`] |
//!
//! The crate is transport-agnostic: encoders consume an
//! [`intermediate::IntermediateSource`] and produce [`packet::CodedPacket`]s;
//! how packets move between nodes is the business of `cts-net`, and how long
//! that takes on a 100 Mbps EC2 cluster is modeled by `cts-netsim`.
//!
//! ## Quick example
//!
//! A complete single-group exchange (the paper's Fig. 6/7 setting, K = 3,
//! r = 2, where each node recovers its missing intermediate from the two
//! coded packets of the other members):
//!
//! ```
//! use bytes::Bytes;
//! use cts_core::decode::DecodePipeline;
//! use cts_core::encode::Encoder;
//! use cts_core::intermediate::MapOutputStore;
//! use cts_core::placement::PlacementPlan;
//!
//! let (k, r) = (3, 2);
//! let plan = PlacementPlan::new(k, r).unwrap();
//!
//! // Map-stage output: node n keeps I^t_F per the §IV-B keep rule.
//! let mut stores: Vec<MapOutputStore> = (0..k).map(|_| MapOutputStore::new()).collect();
//! for node in 0..k {
//!     for file_id in plan.files_of_node(node) {
//!         let file = plan.nodes_of_file(file_id);
//!         for t in 0..k {
//!             if plan.keeps_intermediate(node, file, t) {
//!                 let data = vec![(t * 10 + file.bits() as usize) as u8; 6];
//!                 stores[node].insert(t, file, Bytes::from(data));
//!             }
//!         }
//!     }
//! }
//!
//! // Encode at every sender, "multicast", decode at every receiver.
//! let mut pipes: Vec<DecodePipeline> =
//!     (0..k).map(|n| DecodePipeline::new(k, r, n).unwrap()).collect();
//! let mut recovered = 0;
//! for sender in 0..k {
//!     let enc = Encoder::new(k, r, sender).unwrap();
//!     for pkt in enc.encode_all(&stores[sender]).unwrap() {
//!         for rx in pkt.group.iter().filter(|&n| n != sender) {
//!             if pipes[rx].accept(&pkt, &stores[rx]).unwrap().is_some() {
//!                 recovered += 1;
//!             }
//!         }
//!     }
//! }
//! // Every node recovers the one intermediate it was missing.
//! assert_eq!(recovered, 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `deny`, not `forbid`: the GF(256) SIMD kernels in `gf256::simd` are the
// crate's single audited `unsafe` surface (CPU intrinsics behind runtime
// feature detection); everything else stays safe.
#![deny(unsafe_code)]

pub mod combinatorics;
pub mod decode;
pub mod encode;
pub mod error;
pub mod exec;
pub mod field;
pub mod gf256;
pub mod groups;
pub mod intermediate;
pub mod metrics;
pub mod packet;
pub mod placement;
pub mod pool;
pub mod segment;
pub mod solve;
pub mod subset;
pub mod theory;
pub mod xor;

pub use decode::{
    DecodeMode, DecodePipeline, DecodedSegment, Decoder, SegmentAssembler, SegmentInfo,
};
pub use encode::{EncodeScratch, Encoder};
pub use error::{CodedError, Result};
pub use exec::WorkerPool;
pub use field::FieldKind;
pub use gf256::Gf256Kernel;
pub use groups::{GroupId, MulticastGroups, PodGroups};
pub use intermediate::{IntermediateSource, MapOutputStore};
pub use metrics::{Counter, Gauge, Histogram, MetricsHub};
pub use packet::CodedPacket;
pub use placement::{FileId, PlacementPlan};
pub use pool::{BufPool, Scratch};
pub use solve::GroupSolver;
pub use subset::{NodeId, NodeSet};
