//! Encoding to create coded packets — paper §IV-C, Algorithm 1.
//!
//! Within each multicast group `M` (`|M| = r+1`) containing node `k`, the
//! encoder builds the packet
//!
//! ```text
//! E_{M,k} = ⊕_{t ∈ M\{k}}  I^t_{M\{t}, k}
//! ```
//!
//! where `I^t_{M\{t}}` is split into `r` segments indexed by the members of
//! `M\{t}` (eq. (7)) and the XOR runs over the segments *addressed to `k`*,
//! zero-padded to the longest (footnote 3). Every operand is locally known:
//! `k ∈ M\{t}` means node `k` mapped file `F_{M\{t}}`, and `t ∉ M\{t}` means
//! the keep rule retained `I^t_{M\{t}}`.
//!
//! Over a non-binary [`FieldKind`] the fold generalizes to the q-ary
//! linear combination `Σ_t coeff(k, t) ⊙ segment_t` — same structure,
//! nonzero per-segment coefficients, SIMD multiply-accumulate kernels.

use bytes::Bytes;

use crate::error::{CodedError, Result};
use crate::field::FieldKind;
use crate::gf256;
use crate::groups::MulticastGroups;
use crate::intermediate::IntermediateSource;
use crate::packet::CodedPacket;
use crate::segment::{max_segment_len, segment_for_node, segment_slice, segment_span};
use crate::solve::{mds_parts, mds_point};
use crate::subset::{NodeId, NodeSet};

/// Reusable buffers for the encode hot loop.
///
/// One scratch serves any number of [`Encoder::encode_group_into`] calls;
/// the payload buffer grows to the largest segment ever encoded and is then
/// reused without further allocation (grow-only). After a call, `payload`
/// holds the XOR-folded packet body and `seg_lens` the per-receiver
/// original segment lengths — exactly the parts
/// [`CodedPacket::write_wire`] serializes.
#[derive(Clone, Debug, Default)]
pub struct EncodeScratch {
    /// The zero-padded XOR accumulator (packet payload).
    pub payload: Vec<u8>,
    /// `(receiver, original segment length)` pairs in ascending receiver
    /// order.
    pub seg_lens: Vec<(NodeId, u32)>,
}

impl EncodeScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of the true (unpadded) segment lengths of the last encoded
    /// packet — the scalable part of its wire bytes.
    pub fn seg_len_sum(&self) -> u64 {
        self.seg_lens.iter().map(|(_, l)| *l as u64).sum()
    }
}

/// Per-node encoder for the coded shuffle.
///
/// ```
/// use bytes::Bytes;
/// use cts_core::encode::Encoder;
/// use cts_core::intermediate::MapOutputStore;
/// use cts_core::subset::NodeSet;
///
/// // K = 3, r = 2: the single group is {0,1,2}; node 0 encodes
/// // I^1_{0,2} ⊕ I^2_{0,1} (segments addressed to node 0).
/// let mut store = MapOutputStore::new();
/// store.insert(1, NodeSet::from_iter([0usize, 2]), Bytes::from_static(b"ab"));
/// store.insert(2, NodeSet::from_iter([0usize, 1]), Bytes::from_static(b"cd"));
/// let enc = Encoder::new(3, 2, 0).unwrap();
/// let pkt = enc
///     .encode_group(NodeSet::from_iter([0usize, 1, 2]), &store)
///     .unwrap();
/// // Node 0 is at position 0 in both {0,2} and {0,1}: segments "a" and "c".
/// assert_eq!(pkt.payload, vec![b'a' ^ b'c']);
/// ```
#[derive(Clone, Debug)]
pub struct Encoder {
    groups: MulticastGroups,
    node: NodeId,
    field: FieldKind,
}

impl Encoder {
    /// Encoder for `node` in a `(K, r)` deployment over GF(2) — the
    /// paper's XOR code and the byte-identical reference oracle.
    ///
    /// # Errors
    /// `InvalidParameters` if `(k, r)` is invalid or `node >= k`.
    pub fn new(k: usize, r: usize, node: NodeId) -> Result<Self> {
        Self::with_field(k, r, node, FieldKind::Gf2)
    }

    /// Encoder over an explicit coding field: packets carry
    /// `Σ_t field.coeff(node, t) ⊙ seg_t` instead of a plain XOR fold.
    /// Decoders must be built over the same field.
    ///
    /// # Errors
    /// As [`new`](Encoder::new).
    pub fn with_field(k: usize, r: usize, node: NodeId, field: FieldKind) -> Result<Self> {
        let groups = MulticastGroups::new(k, r)?;
        if node >= k {
            return Err(CodedError::InvalidParameters {
                what: format!("node {node} out of range for K = {k}"),
            });
        }
        Ok(Encoder {
            groups,
            node,
            field,
        })
    }

    /// The node this encoder belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The coding field the packets are combined in.
    pub fn field(&self) -> FieldKind {
        self.field
    }

    /// The group enumeration shared with the decoder.
    pub fn groups(&self) -> &MulticastGroups {
        &self.groups
    }

    /// Builds `E_{M,node}` for multicast group `m` (eq. (8)).
    ///
    /// # Errors
    /// * `InvalidParameters` if `node ∉ m` or `|m| != r+1`;
    /// * `MissingIntermediate` if a required `I^t_{M\{t}}` is absent from
    ///   `source` (keep-rule violation upstream).
    pub fn encode_group<S: IntermediateSource>(
        &self,
        m: NodeSet,
        source: &S,
    ) -> Result<CodedPacket> {
        let mut scratch = EncodeScratch::new();
        self.encode_group_into(m, source, &mut scratch)?;
        Ok(CodedPacket {
            group: m,
            sender: self.node,
            seg_lens: scratch.seg_lens,
            payload: Bytes::from(scratch.payload),
            mds: false,
        })
    }

    /// Builds the MDS-mixed quorum packet for group `m` — the wire-v2
    /// variant behind any-`s`-of-`n` decode (see [`crate::solve`]).
    ///
    /// Each target's intermediate `I^t_{M\{t}}` splits into
    /// `s = mds_parts(|m|)` zero-padded parts, mixed as
    /// `c(node,t) ⊙ Σ_j v_node^j ⊙ part_j` — every sender of `M\{t}`
    /// knows the *full* intermediate (it mapped the file), so any `s`
    /// such packets let receiver `t` solve for all parts.
    /// `scratch.seg_lens` records the per-target *total* lengths.
    ///
    /// # Errors
    /// `InvalidParameters` over GF(2) (no nontrivial binary MDS code at
    /// these lengths); otherwise as [`encode_group`](Encoder::encode_group).
    pub fn encode_group_mds_into<S: IntermediateSource>(
        &self,
        m: NodeSet,
        source: &S,
        scratch: &mut EncodeScratch,
    ) -> Result<()> {
        if !self.field.supports_quorum() {
            return Err(CodedError::InvalidParameters {
                what: format!("field {} does not support MDS quorum encode", self.field),
            });
        }
        self.groups.id_of(m)?; // validates size and universe
        if !m.contains(self.node) {
            return Err(CodedError::InvalidParameters {
                what: format!("node {} not in multicast group {m}", self.node),
            });
        }
        scratch.payload.clear();
        scratch.seg_lens.clear();
        let payload = &mut scratch.payload;
        let s = mds_parts(m.len());
        let v = mds_point(self.node);
        for t in m.iter().filter(|&t| t != self.node) {
            let file = m.without(t);
            let data = source
                .intermediate(t, file)
                .ok_or(CodedError::MissingIntermediate { target: t, file })?;
            let l0 = max_segment_len(data.len(), s);
            if l0 > payload.len() {
                payload.resize(l0, 0);
            }
            // All parts fold at offset 0, zero-padded to the part-0 span.
            let mut w = self.field.coeff(self.node, t);
            for j in 0..s {
                let span = segment_span(data.len(), s, j);
                let seg = &data[span.offset..span.offset + span.len];
                gf256::add_scaled_slice(payload, seg, w);
                w = gf256::mul(w, v);
            }
            scratch.seg_lens.push((t, data.len() as u32));
        }
        Ok(())
    }

    /// Builds `E_{M,node}` into reusable buffers — the allocation-free hot
    /// path of the Encode stage. `scratch.payload`/`scratch.seg_lens` are
    /// cleared and refilled; capacities persist across calls, so a warm
    /// scratch makes this loop heap-allocation-free.
    ///
    /// # Errors
    /// Identical to [`encode_group`](Encoder::encode_group).
    pub fn encode_group_into<S: IntermediateSource>(
        &self,
        m: NodeSet,
        source: &S,
        scratch: &mut EncodeScratch,
    ) -> Result<()> {
        self.groups.id_of(m)?; // validates size and universe
        if !m.contains(self.node) {
            return Err(CodedError::InvalidParameters {
                what: format!("node {} not in multicast group {m}", self.node),
            });
        }
        scratch.payload.clear();
        scratch.seg_lens.clear();
        let payload = &mut scratch.payload;
        for t in m.iter().filter(|&t| t != self.node) {
            let file = m.without(t);
            let data = source
                .intermediate(t, file)
                .ok_or(CodedError::MissingIntermediate { target: t, file })?;
            let span = segment_for_node(data.len(), file, self.node);
            let seg = segment_slice(data, file, self.node);
            debug_assert_eq!(seg.len(), span.len);
            if seg.len() > payload.len() {
                payload.resize(seg.len(), 0);
            }
            self.field
                .add_scaled(payload, seg, self.field.coeff(self.node, t));
            scratch.seg_lens.push((t, span.len as u32));
        }
        Ok(())
    }

    /// Encodes the packets for *all* groups containing this node, in
    /// ascending group order — the node's complete send list for the
    /// Multicast Shuffling stage (`C(K-1, r)` packets, paper §IV-C).
    pub fn encode_all<S: IntermediateSource>(&self, source: &S) -> Result<Vec<CodedPacket>> {
        let mut out = Vec::with_capacity(self.groups.groups_per_node() as usize);
        for (_, m) in self.groups.groups_of_node(self.node) {
            out.push(self.encode_group(m, source)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intermediate::MapOutputStore;
    use bytes::Bytes;

    fn fs(nodes: &[usize]) -> NodeSet {
        nodes.iter().copied().collect()
    }

    /// Store with I^t_F = `pattern(t, F)` for all (t, F) a node would keep.
    fn full_store(
        k: usize,
        r: usize,
        node: NodeId,
        len_of: impl Fn(NodeId, NodeSet) -> usize,
    ) -> MapOutputStore {
        use crate::placement::PlacementPlan;
        let plan = PlacementPlan::new(k, r).unwrap();
        let mut store = MapOutputStore::new();
        for file_id in plan.files_of_node(node) {
            let file = plan.nodes_of_file(file_id);
            for t in 0..k {
                if plan.keeps_intermediate(node, file, t) {
                    let len = len_of(t, file);
                    let data: Vec<u8> = (0..len).map(|i| (t * 37 + i * 11 + 3) as u8).collect();
                    store.insert(t, file, Bytes::from(data));
                }
            }
        }
        store
    }

    #[test]
    fn paper_fig6_structure() {
        // Fig. 6: group M = {1,2,3} one-based = {0,1,2}, r = 2. Node 0's
        // packet XORs the node-0 segments of I^1_{0,2} and I^2_{0,1}.
        let mut store = MapOutputStore::new();
        store.insert(1, fs(&[0, 2]), Bytes::from_static(&[10, 20]));
        store.insert(2, fs(&[0, 1]), Bytes::from_static(&[30, 40]));
        let enc = Encoder::new(3, 2, 0).unwrap();
        let pkt = enc.encode_group(fs(&[0, 1, 2]), &store).unwrap();
        // Node 0 is position 0 in both files; each 2-byte value splits 1+1.
        assert_eq!(pkt.payload, vec![10 ^ 30]);
        assert_eq!(pkt.seg_lens, vec![(1, 1), (2, 1)]);
        assert_eq!(pkt.sender, 0);
    }

    #[test]
    fn paper_fig5_example_single_kv() {
        // §IV-C worked numbers: Node 1 multicasts [30 ⊕ 51] built from
        // I^2_{1,3} = [30] and I^3_{1,2} = [51] (one-based). Zero-based:
        // node 0, I^1_{0,2} = [30], I^2_{0,1} = [51]; with r = 2 a 1-byte
        // value splits into segments of 1 and 0 bytes; node 0 holds
        // position 0 → the 1-byte segment of each.
        let mut store = MapOutputStore::new();
        store.insert(1, fs(&[0, 2]), Bytes::from_static(&[30]));
        store.insert(2, fs(&[0, 1]), Bytes::from_static(&[51]));
        let enc = Encoder::new(3, 2, 0).unwrap();
        let pkt = enc.encode_group(fs(&[0, 1, 2]), &store).unwrap();
        assert_eq!(pkt.payload, vec![30 ^ 51]);
    }

    #[test]
    fn missing_intermediate_is_reported() {
        let store = MapOutputStore::new();
        let enc = Encoder::new(3, 2, 0).unwrap();
        let err = enc.encode_group(fs(&[0, 1, 2]), &store).unwrap_err();
        assert!(matches!(err, CodedError::MissingIntermediate { .. }));
    }

    #[test]
    fn rejects_group_without_self() {
        let store = MapOutputStore::new();
        let enc = Encoder::new(4, 2, 3).unwrap();
        let err = enc.encode_group(fs(&[0, 1, 2]), &store).unwrap_err();
        assert!(matches!(err, CodedError::InvalidParameters { .. }));
    }

    #[test]
    fn rejects_wrong_group_size() {
        let store = MapOutputStore::new();
        let enc = Encoder::new(4, 2, 0).unwrap();
        assert!(enc.encode_group(fs(&[0, 1]), &store).is_err());
    }

    #[test]
    fn payload_padded_to_longest_segment() {
        // Unequal intermediate sizes → zero-padded XOR (footnote 3).
        let mut store = MapOutputStore::new();
        store.insert(1, fs(&[0, 2]), Bytes::from(vec![0xAA; 10])); // segs 5/5
        store.insert(2, fs(&[0, 1]), Bytes::from(vec![0xBB; 4])); // segs 2/2
        let enc = Encoder::new(3, 2, 0).unwrap();
        let pkt = enc.encode_group(fs(&[0, 1, 2]), &store).unwrap();
        assert_eq!(pkt.payload.len(), 5);
        assert_eq!(&pkt.payload[..2], &[0xAA ^ 0xBB, 0xAA ^ 0xBB]);
        assert_eq!(&pkt.payload[2..], &[0xAA, 0xAA, 0xAA]);
        assert_eq!(pkt.seg_len_for(1), Some(5));
        assert_eq!(pkt.seg_len_for(2), Some(2));
    }

    #[test]
    fn encode_all_covers_every_group_of_node() {
        let k = 6;
        let r = 3;
        let node = 2;
        let store = full_store(k, r, node, |t, f| (t + 1) * 3 + f.len());
        let enc = Encoder::new(k, r, node).unwrap();
        let packets = enc.encode_all(&store).unwrap();
        assert_eq!(packets.len() as u64, enc.groups().groups_per_node());
        for p in &packets {
            assert!(p.group.contains(node));
            assert_eq!(p.sender, node);
            assert_eq!(p.seg_lens.len(), r);
        }
        // Ascending group order.
        for w in packets.windows(2) {
            assert!(w[0].group < w[1].group);
        }
    }

    #[test]
    fn encode_group_into_matches_encode_group_with_warm_scratch() {
        let (k, r, node) = (6, 3, 2);
        let store = full_store(k, r, node, |t, f| (t + 1) * 9 + f.len());
        let enc = Encoder::new(k, r, node).unwrap();
        let mut scratch = EncodeScratch::new();
        // Two passes over all groups: the second runs against warm buffers
        // and must produce identical packets.
        for pass in 0..2 {
            for (_, m) in enc.groups().groups_of_node(node) {
                let reference = enc.encode_group(m, &store).unwrap();
                enc.encode_group_into(m, &store, &mut scratch).unwrap();
                assert_eq!(scratch.payload, reference.payload, "pass {pass} {m}");
                assert_eq!(scratch.seg_lens, reference.seg_lens, "pass {pass} {m}");
                assert_eq!(
                    scratch.seg_len_sum(),
                    reference
                        .seg_lens
                        .iter()
                        .map(|(_, l)| *l as u64)
                        .sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn scratch_payload_shrinks_correctly_between_groups() {
        // A long encode followed by a short one must not leak stale tail
        // bytes from the warm (larger-capacity) payload buffer.
        let mut store = MapOutputStore::new();
        store.insert(1, fs(&[0, 2]), Bytes::from(vec![0x11; 64]));
        store.insert(2, fs(&[0, 1]), Bytes::from(vec![0x22; 64]));
        let enc = Encoder::new(3, 2, 0).unwrap();
        let mut scratch = EncodeScratch::new();
        enc.encode_group_into(fs(&[0, 1, 2]), &store, &mut scratch)
            .unwrap();
        assert_eq!(scratch.payload.len(), 32);
        store.insert(1, fs(&[0, 2]), Bytes::from(vec![0x33; 4]));
        store.insert(2, fs(&[0, 1]), Bytes::from(vec![0x44; 4]));
        enc.encode_group_into(fs(&[0, 1, 2]), &store, &mut scratch)
            .unwrap();
        assert_eq!(scratch.payload, vec![0x33 ^ 0x44, 0x33 ^ 0x44]);
    }

    #[test]
    fn mds_encode_reports_totals_and_pads_to_part_zero() {
        let (k, r, node) = (4, 3, 1);
        let store = full_store(k, r, node, |t, f| (t + 2) * 5 + f.len());
        let enc = Encoder::with_field(k, r, node, FieldKind::Gf256).unwrap();
        let mut scratch = EncodeScratch::new();
        let m = fs(&[0, 1, 2, 3]);
        enc.encode_group_mds_into(m, &store, &mut scratch).unwrap();
        // seg_lens carry the *total* intermediate length per target.
        let s = crate::solve::mds_parts(m.len());
        let mut max_l0 = 0usize;
        for &(t, total) in &scratch.seg_lens {
            let data = store.intermediate(t, m.without(t)).unwrap();
            assert_eq!(total as usize, data.len(), "target {t}");
            max_l0 = max_l0.max(max_segment_len(data.len(), s));
        }
        assert_eq!(scratch.payload.len(), max_l0);
        // The fold is linear with nonzero weights, so the payload cannot
        // be the classic per-position encode.
        let mut classic = EncodeScratch::new();
        enc.encode_group_into(m, &store, &mut classic).unwrap();
        assert_ne!(scratch.payload, classic.payload);
    }

    #[test]
    fn mds_encode_rejects_gf2() {
        let store = full_store(3, 2, 0, |_, _| 8);
        let enc = Encoder::new(3, 2, 0).unwrap();
        let err = enc
            .encode_group_mds_into(fs(&[0, 1, 2]), &store, &mut EncodeScratch::new())
            .unwrap_err();
        assert!(matches!(err, CodedError::InvalidParameters { .. }));
    }

    #[test]
    fn empty_intermediates_give_empty_packets() {
        let store = full_store(4, 2, 1, |_, _| 0);
        let enc = Encoder::new(4, 2, 1).unwrap();
        for pkt in enc.encode_all(&store).unwrap() {
            assert!(pkt.payload.is_empty());
            assert!(pkt.seg_lens.iter().all(|(_, l)| *l == 0));
        }
    }
}
