//! Error type shared across the coded-shuffle core.

use crate::subset::{NodeId, NodeSet};

/// Errors produced by the coded-shuffle core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodedError {
    /// A constructor received parameters outside its domain (e.g. `r > K`).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        what: String,
    },
    /// An encode/decode step required an intermediate value `I^t_F` that the
    /// local store does not hold — the placement, the keep rule, and the
    /// request disagree.
    MissingIntermediate {
        /// The reduce target `t` of the missing intermediate.
        target: NodeId,
        /// The file label `F` of the missing intermediate.
        file: NodeSet,
    },
    /// A coded packet failed structural validation (truncated buffer, wrong
    /// lengths, unknown sender, …).
    MalformedPacket {
        /// What was wrong with the packet.
        what: String,
    },
    /// A packet arrived for a `(K, r)` configuration other than the local
    /// plan's.
    PlanMismatch {
        /// Description of the disagreement.
        what: String,
    },
}

impl std::fmt::Display for CodedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodedError::InvalidParameters { what } => write!(f, "invalid parameters: {what}"),
            CodedError::MissingIntermediate { target, file } => {
                write!(f, "missing intermediate I^{target}_{file}")
            }
            CodedError::MalformedPacket { what } => write!(f, "malformed coded packet: {what}"),
            CodedError::PlanMismatch { what } => write!(f, "plan mismatch: {what}"),
        }
    }
}

impl std::error::Error for CodedError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CodedError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodedError::MissingIntermediate {
            target: 2,
            file: NodeSet::from_iter([0usize, 1]),
        };
        assert_eq!(e.to_string(), "missing intermediate I^2_{0,1}");
        let e = CodedError::InvalidParameters {
            what: "r must be in 1..=4, got 9".into(),
        };
        assert!(e.to_string().contains("r must be"));
    }
}
