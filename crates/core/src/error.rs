//! Error type shared across the coded-shuffle core.

use crate::subset::{NodeId, NodeSet};

/// Errors produced by the coded-shuffle core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodedError {
    /// A constructor received parameters outside its domain (e.g. `r > K`).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        what: String,
    },
    /// An encode/decode step required an intermediate value `I^t_F` that the
    /// local store does not hold — the placement, the keep rule, and the
    /// request disagree.
    MissingIntermediate {
        /// The reduce target `t` of the missing intermediate.
        target: NodeId,
        /// The file label `F` of the missing intermediate.
        file: NodeSet,
    },
    /// A coded packet failed structural validation (truncated buffer, wrong
    /// lengths, unknown sender, …).
    MalformedPacket {
        /// What was wrong with the packet.
        what: String,
    },
    /// A packet arrived for a `(K, r)` configuration other than the local
    /// plan's.
    PlanMismatch {
        /// Description of the disagreement.
        what: String,
    },
    /// A per-group MDS solve could not complete: the accumulated
    /// coefficient matrix is singular, underdetermined, or inconsistent
    /// with an earlier equation. Reported, never panicked — callers decide
    /// whether to wait for more packets or fail the group.
    SingularSystem {
        /// Rank reached when the failure was detected.
        rank: usize,
        /// Rank required for a unique solution.
        need: usize,
        /// What went wrong.
        what: String,
    },
}

impl std::fmt::Display for CodedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodedError::InvalidParameters { what } => write!(f, "invalid parameters: {what}"),
            CodedError::MissingIntermediate { target, file } => {
                write!(f, "missing intermediate I^{target}_{file}")
            }
            CodedError::MalformedPacket { what } => write!(f, "malformed coded packet: {what}"),
            CodedError::PlanMismatch { what } => write!(f, "plan mismatch: {what}"),
            CodedError::SingularSystem { rank, need, what } => {
                write!(f, "singular system (rank {rank} of {need}): {what}")
            }
        }
    }
}

impl std::error::Error for CodedError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CodedError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodedError::MissingIntermediate {
            target: 2,
            file: NodeSet::from_iter([0usize, 1]),
        };
        assert_eq!(e.to_string(), "missing intermediate I^2_{0,1}");
        let e = CodedError::InvalidParameters {
            what: "r must be in 1..=4, got 9".into(),
        };
        assert!(e.to_string().contains("r must be"));
    }
}
