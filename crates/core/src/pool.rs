//! Reusable buffer pooling — the allocation story of the compute plane.
//!
//! The per-group/per-packet loops of the coded shuffle (encode → pack →
//! unpack → decode) are executed `C(K-1, r)` times per node per job; at the
//! paper's K = 16, r = 5 that is 3 003 iterations each touching multi-KB
//! buffers. Allocating fresh `Vec`s inside those loops puts the allocator on
//! the critical path and defeats the CDC premise that the coding compute
//! must stay cheap (arXiv:1604.07086). This module provides the two reuse
//! primitives the hot loops are built on:
//!
//! * [`BufPool`] — a thread-safe free list of byte buffers for state that
//!   crosses ownership boundaries (e.g. the [`DecodePipeline`]'s segment
//!   accumulators, which live from packet arrival until group completion);
//! * [`Scratch`] — a single-owner, grow-only workspace for state confined
//!   to one loop (encode payloads, radix count/offset tables, key-index
//!   entry arrays).
//!
//! Both are *grow-only in steady state*: after a warm-up pass at the
//! largest working-set size, subsequent iterations perform zero heap
//! allocations (asserted by the `alloc_free` integration test).
//!
//! [`DecodePipeline`]: crate::decode::DecodePipeline

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A thread-safe free list of reusable byte buffers.
///
/// `get` hands out a cleared buffer (recycled when one is pooled, freshly
/// allocated otherwise); `put` returns a buffer to the pool, keeping its
/// capacity. Buffers are plain `Vec<u8>`s, so forgetting to `put` one back
/// is a leak of *reuse*, never of memory.
///
/// ```
/// use cts_core::pool::BufPool;
///
/// let pool = BufPool::new();
/// let mut buf = pool.get();
/// buf.extend_from_slice(b"warm");
/// let cap = buf.capacity();
/// pool.put(buf);
/// // The next get reuses the same allocation, cleared.
/// let buf = pool.get();
/// assert!(buf.is_empty());
/// assert_eq!(buf.capacity(), cap);
/// assert_eq!(pool.recycle_hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer from the pool, or allocates an empty one.
    pub fn get(&self) -> Vec<u8> {
        match self.free.lock().expect("BufPool lock").pop() {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Returns `buf` to the pool, cleared, capacity preserved.
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        self.free.lock().expect("BufPool lock").push(buf);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("BufPool lock").len()
    }

    /// How many `get`s were served from the free list.
    pub fn recycle_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many `get`s had to allocate a fresh buffer.
    pub fn recycle_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A single-owner, grow-only scratch buffer of `T`s.
///
/// `Scratch` wraps a `Vec<T>` whose capacity only ever grows, so a loop
/// that clears and refills it allocates at most during the first (largest)
/// iteration. [`take`](Scratch::take)/[`restore`](Scratch::restore) support
/// ping-pong algorithms (radix sort) that need to move the buffer through
/// ownership changes without dropping its capacity.
///
/// ```
/// use cts_core::pool::Scratch;
///
/// let mut tables: Scratch<u32> = Scratch::new();
/// // A zeroed table sized to the radix — reused (not reallocated) per pass.
/// let table = tables.zeroed(1 << 16);
/// assert_eq!(table.len(), 1 << 16);
/// assert!(table.iter().all(|&c| c == 0));
/// ```
#[derive(Clone, Debug)]
pub struct Scratch<T = u8> {
    buf: Vec<T>,
}

impl<T> Default for Scratch<T> {
    fn default() -> Self {
        Scratch { buf: Vec::new() }
    }
}

impl<T> Scratch<T> {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the buffer (keeping capacity) and returns it for refilling.
    pub fn cleared(&mut self) -> &mut Vec<T> {
        self.buf.clear();
        &mut self.buf
    }

    /// Moves the buffer out (e.g. for a ping-pong phase). The scratch is
    /// left empty; hand the buffer back with [`restore`](Scratch::restore)
    /// to keep its capacity for the next iteration.
    pub fn take(&mut self) -> Vec<T> {
        std::mem::take(&mut self.buf)
    }

    /// Returns a previously [`take`](Scratch::take)n (or any other) buffer.
    pub fn restore(&mut self, buf: Vec<T>) {
        // Keep whichever buffer has more capacity — ping-pong phases may
        // hand back either of the two buffers involved.
        if buf.capacity() > self.buf.capacity() {
            self.buf = buf;
        }
    }

    /// Current capacity (the grow-only high-water mark).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

impl<T: Copy + Default> Scratch<T> {
    /// The buffer resized to exactly `n` default-valued (zero for integer
    /// `T`) elements — a reusable count/offset table.
    pub fn zeroed(&mut self, n: usize) -> &mut [T] {
        self.buf.clear();
        self.buf.resize(n, T::default());
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_capacity() {
        let pool = BufPool::new();
        let mut a = pool.get();
        assert_eq!(pool.recycle_misses(), 1);
        a.resize(4096, 7);
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.get();
        assert!(b.is_empty());
        assert!(b.capacity() >= 4096);
        assert_eq!(pool.recycle_hits(), 1);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_is_lifo() {
        let pool = BufPool::new();
        let mut a = pool.get();
        a.reserve(10);
        let mut b = pool.get();
        b.reserve(20);
        pool.put(a);
        pool.put(b);
        // Last in, first out: the 20-capacity buffer comes back first.
        assert!(pool.get().capacity() >= 20);
    }

    #[test]
    fn scratch_grows_only() {
        let mut s: Scratch<u8> = Scratch::new();
        s.cleared().extend_from_slice(&[1; 100]);
        let cap = s.capacity();
        assert!(cap >= 100);
        s.cleared().extend_from_slice(&[2; 10]);
        assert_eq!(s.capacity(), cap);
    }

    #[test]
    fn scratch_take_restore_keeps_best_capacity() {
        let mut s: Scratch<u32> = Scratch::new();
        s.zeroed(1000);
        let big = s.take();
        assert_eq!(s.capacity(), 0);
        s.restore(Vec::new()); // worse buffer is dropped
        s.restore(big);
        assert!(s.capacity() >= 1000);
    }

    #[test]
    fn zeroed_resets_contents() {
        let mut s: Scratch<u32> = Scratch::new();
        s.zeroed(8).copy_from_slice(&[9; 8]);
        assert!(s.zeroed(8).iter().all(|&x| x == 0));
        assert_eq!(s.zeroed(3).len(), 3);
    }

    #[test]
    fn pool_shared_across_threads() {
        use std::sync::Arc;
        let pool = Arc::new(BufPool::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let mut b = pool.get();
                        b.push(1);
                        pool.put(b);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.recycle_hits() + pool.recycle_misses(), 400);
    }
}
