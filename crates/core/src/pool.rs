//! Reusable buffer pooling — the allocation story of the compute plane.
//!
//! The per-group/per-packet loops of the coded shuffle (encode → pack →
//! unpack → decode) are executed `C(K-1, r)` times per node per job; at the
//! paper's K = 16, r = 5 that is 3 003 iterations each touching multi-KB
//! buffers. Allocating fresh `Vec`s inside those loops puts the allocator on
//! the critical path and defeats the CDC premise that the coding compute
//! must stay cheap (arXiv:1604.07086). This module provides the two reuse
//! primitives the hot loops are built on:
//!
//! * [`BufPool`] — a thread-safe free list of byte buffers for state that
//!   crosses ownership boundaries (e.g. the [`DecodePipeline`]'s segment
//!   accumulators, which live from packet arrival until group completion);
//! * [`Scratch`] — a single-owner, grow-only workspace for state confined
//!   to one loop (encode payloads, radix count/offset tables, key-index
//!   entry arrays).
//!
//! Both are *grow-only in steady state*: after a warm-up pass at the
//! largest working-set size, subsequent iterations perform zero heap
//! allocations (asserted by the `alloc_free` integration test).
//!
//! [`DecodePipeline`]: crate::decode::DecodePipeline

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A thread-safe free list of reusable byte buffers.
///
/// `get` hands out a cleared buffer (recycled when one is pooled, freshly
/// allocated otherwise); `put` returns a buffer to the pool, keeping its
/// capacity. Buffers are plain `Vec<u8>`s, so forgetting to `put` one back
/// is a leak of *reuse*, never of memory.
///
/// ```
/// use cts_core::pool::BufPool;
///
/// let pool = BufPool::new();
/// let mut buf = pool.get();
/// buf.extend_from_slice(b"warm");
/// let cap = buf.capacity();
/// pool.put(buf);
/// // The next get reuses the same allocation, cleared.
/// let buf = pool.get();
/// assert!(buf.is_empty());
/// assert_eq!(buf.capacity(), cap);
/// assert_eq!(pool.recycle_hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer from the pool, or allocates an empty one.
    pub fn get(&self) -> Vec<u8> {
        match self.free.lock().expect("BufPool lock").pop() {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Returns `buf` to the pool, cleared, capacity preserved.
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        self.free.lock().expect("BufPool lock").push(buf);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("BufPool lock").len()
    }

    /// How many `get`s were served from the free list.
    pub fn recycle_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many `get`s had to allocate a fresh buffer.
    pub fn recycle_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Checks out a *shard*: up to `n` pooled buffers moved out under a
    /// single lock acquisition, for a worker that will `get`/`put` many
    /// times without touching the shared free list. Parallel decode
    /// fan-outs draw one shard per worker per wave, so the per-packet hot
    /// path is lock-free and — once the pool is warm — allocation-free.
    /// Dropping the shard returns its unused buffers.
    pub fn checkout(&self, n: usize) -> BufPoolShard<'_> {
        let mut shard = BufPoolShard {
            parent: self,
            local: Vec::with_capacity(n),
        };
        shard.refill(n);
        shard
    }

    /// Returns a batch of buffers under one lock (cleared by the caller).
    fn put_many(&self, bufs: &mut Vec<Vec<u8>>) {
        if bufs.is_empty() {
            return;
        }
        self.free.lock().expect("BufPool lock").append(bufs);
    }
}

/// A per-worker slice of a [`BufPool`]: locally pooled buffers with
/// lock-free `get`/`put`, falling back to (and eventually returning to)
/// the parent pool. See [`BufPool::checkout`].
#[derive(Debug)]
pub struct BufPoolShard<'a> {
    parent: &'a BufPool,
    local: Vec<Vec<u8>>,
}

impl BufPoolShard<'_> {
    /// Takes a cleared buffer from the shard; falls back to the parent
    /// pool (one lock, then an allocation only if that is empty too).
    pub fn get(&mut self) -> Vec<u8> {
        match self.local.pop() {
            Some(buf) => {
                self.parent.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => self.parent.get(),
        }
    }

    /// Returns `buf` to the shard, cleared, capacity preserved (lock-free).
    pub fn put(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        self.local.push(buf);
    }

    /// Tops the shard back up to `n` buffers from the parent pool (one
    /// lock; takes fewer when the parent has fewer pooled). A warm wave
    /// loop reuses one shard via `refill` instead of re-checking out, so
    /// its steady state performs zero heap allocations.
    pub fn refill(&mut self, n: usize) {
        if self.local.len() >= n {
            return;
        }
        let mut free = self.parent.free.lock().expect("BufPool lock");
        while self.local.len() < n {
            match free.pop() {
                Some(buf) => self.local.push(buf),
                None => break,
            }
        }
    }

    /// Buffers currently held locally.
    pub fn pooled(&self) -> usize {
        self.local.len()
    }
}

impl Drop for BufPoolShard<'_> {
    fn drop(&mut self) {
        self.parent.put_many(&mut self.local);
    }
}

/// A single-owner, grow-only scratch buffer of `T`s.
///
/// `Scratch` wraps a `Vec<T>` whose capacity only ever grows, so a loop
/// that clears and refills it allocates at most during the first (largest)
/// iteration. [`take`](Scratch::take)/[`restore`](Scratch::restore) support
/// ping-pong algorithms (radix sort) that need to move the buffer through
/// ownership changes without dropping its capacity.
///
/// ```
/// use cts_core::pool::Scratch;
///
/// let mut tables: Scratch<u32> = Scratch::new();
/// // A zeroed table sized to the radix — reused (not reallocated) per pass.
/// let table = tables.zeroed(1 << 16);
/// assert_eq!(table.len(), 1 << 16);
/// assert!(table.iter().all(|&c| c == 0));
/// ```
#[derive(Clone, Debug)]
pub struct Scratch<T = u8> {
    buf: Vec<T>,
}

impl<T> Default for Scratch<T> {
    fn default() -> Self {
        Scratch { buf: Vec::new() }
    }
}

impl<T> Scratch<T> {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the buffer (keeping capacity) and returns it for refilling.
    pub fn cleared(&mut self) -> &mut Vec<T> {
        self.buf.clear();
        &mut self.buf
    }

    /// Moves the buffer out (e.g. for a ping-pong phase). The scratch is
    /// left empty; hand the buffer back with [`restore`](Scratch::restore)
    /// to keep its capacity for the next iteration.
    pub fn take(&mut self) -> Vec<T> {
        std::mem::take(&mut self.buf)
    }

    /// Returns a previously [`take`](Scratch::take)n (or any other) buffer.
    pub fn restore(&mut self, buf: Vec<T>) {
        // Keep whichever buffer has more capacity — ping-pong phases may
        // hand back either of the two buffers involved.
        if buf.capacity() > self.buf.capacity() {
            self.buf = buf;
        }
    }

    /// Current capacity (the grow-only high-water mark).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

impl<T: Copy + Default> Scratch<T> {
    /// The buffer resized to exactly `n` default-valued (zero for integer
    /// `T`) elements — a reusable count/offset table.
    pub fn zeroed(&mut self, n: usize) -> &mut [T] {
        self.buf.clear();
        self.buf.resize(n, T::default());
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_capacity() {
        let pool = BufPool::new();
        let mut a = pool.get();
        assert_eq!(pool.recycle_misses(), 1);
        a.resize(4096, 7);
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.get();
        assert!(b.is_empty());
        assert!(b.capacity() >= 4096);
        assert_eq!(pool.recycle_hits(), 1);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_is_lifo() {
        let pool = BufPool::new();
        let mut a = pool.get();
        a.reserve(10);
        let mut b = pool.get();
        b.reserve(20);
        pool.put(a);
        pool.put(b);
        // Last in, first out: the 20-capacity buffer comes back first.
        assert!(pool.get().capacity() >= 20);
    }

    #[test]
    fn scratch_grows_only() {
        let mut s: Scratch<u8> = Scratch::new();
        s.cleared().extend_from_slice(&[1; 100]);
        let cap = s.capacity();
        assert!(cap >= 100);
        s.cleared().extend_from_slice(&[2; 10]);
        assert_eq!(s.capacity(), cap);
    }

    #[test]
    fn scratch_take_restore_keeps_best_capacity() {
        let mut s: Scratch<u32> = Scratch::new();
        s.zeroed(1000);
        let big = s.take();
        assert_eq!(s.capacity(), 0);
        s.restore(Vec::new()); // worse buffer is dropped
        s.restore(big);
        assert!(s.capacity() >= 1000);
    }

    #[test]
    fn zeroed_resets_contents() {
        let mut s: Scratch<u32> = Scratch::new();
        s.zeroed(8).copy_from_slice(&[9; 8]);
        assert!(s.zeroed(8).iter().all(|&x| x == 0));
        assert_eq!(s.zeroed(3).len(), 3);
    }

    #[test]
    fn shard_checkout_get_put_and_drop_return() {
        let pool = BufPool::new();
        // Seed the pool with three distinct warm buffers.
        let seeds: Vec<Vec<u8>> = (0..3).map(|_| Vec::with_capacity(1024)).collect();
        for b in seeds {
            pool.put(b);
        }
        let mut shard = pool.checkout(2);
        assert_eq!(shard.pooled(), 2);
        assert_eq!(pool.pooled(), 1);
        let a = shard.get();
        assert!(a.capacity() >= 1024, "shard serves warm buffers");
        // Local get/put round trip keeps the buffer in the shard.
        shard.put(a);
        assert_eq!(shard.pooled(), 2);
        // Exhausting the shard falls back to the parent, then allocates.
        let _x = shard.get();
        let _y = shard.get();
        let w = shard.get(); // shard empty → parent's last warm buffer
        assert!(w.capacity() >= 1024);
        assert_eq!(pool.pooled(), 0);
        let z = shard.get(); // parent empty too → fresh allocation
        assert_eq!(z.capacity(), 0);
        shard.put(w);
        shard.put(z);
        drop(shard);
        // The shard's remaining buffers went back to the parent.
        assert_eq!(pool.pooled(), 2);
    }

    #[test]
    fn shard_refill_tops_up_without_overdraw() {
        let pool = BufPool::new();
        for _ in 0..4 {
            pool.put(Vec::with_capacity(64));
        }
        let mut shard = pool.checkout(0);
        assert_eq!(shard.pooled(), 0);
        shard.refill(3);
        assert_eq!(shard.pooled(), 3);
        assert_eq!(pool.pooled(), 1);
        // Asking for more than the parent holds takes what exists.
        shard.refill(10);
        assert_eq!(shard.pooled(), 4);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_shared_across_threads() {
        use std::sync::Arc;
        let pool = Arc::new(BufPool::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let mut b = pool.get();
                        b.push(1);
                        pool.put(b);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.recycle_hits() + pool.recycle_misses(), 400);
    }
}
