//! Deterministic chunked intra-node parallelism.
//!
//! The single-host emulation runs all `K` nodes as threads of one process,
//! so naive per-node `rayon`-style parallelism would spawn `K × T` workers
//! and thrash the scheduler at K = 64. [`WorkerPool`] solves both problems:
//!
//! * **Determinism** — `map`/`map_with` return results strictly in item
//!   order, and every work item is a pure function of its index, so the
//!   output is byte-identical for *any* thread count (asserted by
//!   `tests/compute_equivalence.rs`).
//! * **Bounded parallelism** — extra worker threads are leased from a
//!   [`Budget`] (by default the process-wide one, sized to the machine's
//!   available parallelism). When 64 emulated nodes all request 4 threads
//!   at once, the budget grants what exists and the rest run inline on the
//!   node's own thread; outputs are unaffected.
//! * **Cooperative sharing** — a pool built
//!   [`with_yield`](WorkerPool::with_yield) splits each `map`/`map_with`
//!   into item slices and releases its lease between slices, so long jobs
//!   (encode/decode loops over thousands of coded groups) take turns on
//!   the budget instead of holding it end to end. Cooperative acquires are
//!   FIFO-ordered with a bounded patience, so two long jobs interleave
//!   leases deterministically instead of serializing. Slicing never
//!   changes which item maps to which output index, so results stay
//!   byte-identical to the non-cooperative pool.
//!
//! ```
//! use cts_core::exec::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Identical output at any thread count:
//! assert_eq!(squares, WorkerPool::serial().map(8, |i| i * i));
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The process-wide extra-thread budget (the default lease source).
pub fn global_budget() -> &'static Arc<Budget> {
    static BUDGET: OnceLock<Arc<Budget>> = OnceLock::new();
    BUDGET.get_or_init(|| Arc::new(Budget::new(default_parallelism())))
}

/// The machine's available parallelism (fallback 4 when undetectable).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// One observed lease grant: which caller (keyed by its thread) asked and
/// how many extra threads it got. Recorded only while the probe is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseEvent {
    /// Stable key of the acquiring thread (hash of its `ThreadId`).
    pub owner: u64,
    /// Extra threads granted (0 = the caller runs inline).
    pub granted: usize,
}

struct BudgetState {
    avail: usize,
    /// FIFO ticket counter for cooperative acquires.
    next_ticket: u64,
    /// The ticket currently allowed to take threads.
    serving: u64,
    /// Cooperative tickets whose owner gave up waiting; skipped when
    /// `serving` reaches them so the queue cannot stall.
    abandoned: VecDeque<u64>,
}

/// A leasable extra-thread budget.
///
/// Pools usually share the [`global_budget`]; a multi-tenant runtime can
/// own a private `Budget` so its jobs contend only with each other. Plain
/// [`acquire`](Budget::acquire) never blocks (legacy all-or-nothing
/// semantics); [`acquire_coop`](Budget::acquire_coop) waits briefly in
/// FIFO order so yielded leases hand off fairly between jobs.
pub struct Budget {
    state: Mutex<BudgetState>,
    cv: Condvar,
    probe: Mutex<Option<Vec<LeaseEvent>>>,
    /// Observability sink for cooperative lease wait times (ns), attached
    /// by the owning runtime. `None` costs one uncontended mutex lock per
    /// cooperative acquire.
    wait_hist: Mutex<Option<Arc<crate::metrics::Histogram>>>,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let avail = self.state.lock().map(|s| s.avail).unwrap_or(0);
        f.debug_struct("Budget").field("avail", &avail).finish()
    }
}

impl Budget {
    /// A budget holding `n` extra threads.
    pub fn new(n: usize) -> Budget {
        Budget {
            state: Mutex::new(BudgetState {
                avail: n,
                next_ticket: 0,
                serving: 0,
                abandoned: VecDeque::new(),
            }),
            cv: Condvar::new(),
            probe: Mutex::new(None),
            wait_hist: Mutex::new(None),
        }
    }

    /// Attaches a histogram that receives the time (ns) each cooperative
    /// acquire spent waiting for its FIFO turn.
    pub fn set_wait_histogram(&self, hist: Arc<crate::metrics::Histogram>) {
        *self.wait_hist.lock().expect("budget wait hist lock") = Some(hist);
    }

    /// Starts recording lease grants (for fairness tests and diagnostics).
    pub fn enable_probe(&self) {
        *self.probe.lock().expect("budget probe lock") = Some(Vec::new());
    }

    /// Stops recording and returns the grant log in acquisition order.
    pub fn take_probe(&self) -> Vec<LeaseEvent> {
        self.probe
            .lock()
            .expect("budget probe lock")
            .take()
            .unwrap_or_default()
    }

    fn record(&self, owner: u64, granted: usize) {
        if let Some(log) = self.probe.lock().expect("budget probe lock").as_mut() {
            log.push(LeaseEvent { owner, granted });
        }
    }

    /// Leases up to `want` extra threads without blocking: grants whatever
    /// is available right now (possibly 0). Ignores the cooperative FIFO.
    pub fn acquire(&self, want: usize, owner: u64) -> usize {
        let granted = {
            let mut s = self.state.lock().expect("exec budget lock");
            let granted = want.min(s.avail);
            s.avail -= granted;
            granted
        };
        self.record(owner, granted);
        granted
    }

    /// Cooperative lease: takes a FIFO ticket and waits up to `patience`
    /// for its turn *and* for threads to be available. On timeout the
    /// caller proceeds with whatever is free (possibly 0) — cooperative
    /// acquires never deadlock, they only wait politely.
    pub fn acquire_coop(&self, want: usize, patience: Duration, owner: u64) -> usize {
        let start = Instant::now();
        let deadline = start + patience;
        let mut s = self.state.lock().expect("exec budget lock");
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        let granted = loop {
            Self::skip_abandoned(&mut s);
            if s.serving == ticket && s.avail > 0 {
                let granted = want.min(s.avail);
                s.avail -= granted;
                s.serving += 1;
                self.cv.notify_all();
                break granted;
            }
            let now = Instant::now();
            if now >= deadline {
                if s.serving == ticket {
                    // Our turn, nothing free: give up and run inline.
                    s.serving += 1;
                    self.cv.notify_all();
                } else {
                    // Still queued behind others: abandon the ticket so the
                    // queue flows past it.
                    s.abandoned.push_back(ticket);
                    self.cv.notify_all();
                }
                break 0;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(s, deadline - now)
                .expect("exec budget wait");
            s = guard;
        };
        drop(s);
        if let Some(h) = self
            .wait_hist
            .lock()
            .expect("budget wait hist lock")
            .as_ref()
        {
            h.record(start.elapsed().as_nanos() as u64);
        }
        self.record(owner, granted);
        granted
    }

    fn skip_abandoned(s: &mut BudgetState) {
        while let Some(pos) = s.abandoned.iter().position(|&t| t == s.serving) {
            s.abandoned.remove(pos);
            s.serving += 1;
        }
    }

    /// Returns leased threads. Paired with the acquire methods via
    /// an RAII `Lease` so panics cannot strand permits.
    pub fn release(&self, n: usize) {
        if n > 0 {
            let mut s = self.state.lock().expect("exec budget lock");
            s.avail += n;
            Self::skip_abandoned(&mut s);
            drop(s);
            self.cv.notify_all();
        }
    }
}

/// RAII lease on extra worker threads.
struct Lease<'a> {
    budget: &'a Budget,
    granted: usize,
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        self.budget.release(self.granted);
    }
}

/// Stable per-thread owner key for lease accounting.
fn owner_key() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish()
}

/// How long a cooperative acquire waits for its FIFO turn before running
/// inline. Long enough to bridge another job's slice, short enough that a
/// non-cooperative lease holder cannot stall the caller noticeably.
const DEFAULT_YIELD_PATIENCE: Duration = Duration::from_millis(20);

/// A deterministic chunked worker pool.
///
/// The pool itself is a lightweight value (no threads are kept alive
/// between calls); `map`/`map_with` spawn scoped workers per call, bounded
/// by both the configured thread count and the lease budget.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    threads: usize,
    yield_slices: usize,
    yield_patience: Duration,
    budget: Option<Arc<Budget>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

impl WorkerPool {
    /// A pool targeting `threads` workers; `0` means "use the machine's
    /// available parallelism".
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: if threads == 0 {
                default_parallelism()
            } else {
                threads
            },
            yield_slices: 1,
            yield_patience: DEFAULT_YIELD_PATIENCE,
            budget: None,
        }
    }

    /// The single-threaded pool: every `map` runs inline.
    pub fn serial() -> Self {
        WorkerPool::new(1)
    }

    /// Makes the pool cooperative: each `map`/`map_with` call is split
    /// into up to `slices` item slices with the lease released between
    /// them, so concurrent long jobs interleave instead of one holding the
    /// whole budget end to end. `slices <= 1` keeps the legacy
    /// single-lease behavior. Slices never shrink below the pool's thread
    /// count in items, so intra-slice parallelism is unaffected, and the
    /// item→output mapping is unchanged (byte-identical results).
    pub fn with_yield(mut self, slices: usize) -> Self {
        self.yield_slices = slices.max(1);
        self
    }

    /// Sets how long cooperative acquires wait for their FIFO turn.
    pub fn with_yield_patience(mut self, patience: Duration) -> Self {
        self.yield_patience = patience;
        self
    }

    /// Leases from `budget` instead of the process-wide [`global_budget`]
    /// (a job runtime owns one budget and hands it to every job's pool).
    pub fn with_budget(mut self, budget: Arc<Budget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The configured (requested) worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The cooperative slice count (1 = non-cooperative).
    pub fn yield_slices(&self) -> usize {
        self.yield_slices
    }

    /// The lease source this pool draws from.
    pub fn budget(&self) -> &Arc<Budget> {
        self.budget.as_ref().unwrap_or_else(|| global_budget())
    }

    /// Applies `f` to every index in `0..n`, returning results in index
    /// order. Deterministic for any thread count and budget state.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_with(n, || (), |(), i| f(i))
    }

    /// Splits `n` items into at most `threads()` contiguous ranges of at
    /// least `min_per_chunk` items each (one range covering everything when
    /// `n` is small) — the shared chunking plan of the parallel Map hash
    /// and the parallel sort. The plan depends only on `(n, threads,
    /// min_per_chunk)`, never on the runtime thread grant, and concatenating
    /// the ranges in order always reproduces `0..n`.
    pub fn chunk_ranges(&self, n: usize, min_per_chunk: usize) -> Vec<std::ops::Range<usize>> {
        // Floor division: with c chunks every non-final chunk holds
        // ⌈n/c⌉ ≥ n/c ≥ min_per_chunk items, so the floor actually holds.
        let chunks = self.threads.min((n / min_per_chunk.max(1)).max(1));
        let per_chunk = n.div_ceil(chunks);
        let mut ranges = Vec::with_capacity(chunks);
        let mut start = 0usize;
        // Walk cumulative bounds (⌈n/c⌉·c can overshoot n, so a plain
        // c*per_chunk start would invert the tail ranges).
        while start < n {
            let end = (start + per_chunk).min(n);
            ranges.push(start..end);
            start = end;
        }
        if ranges.is_empty() {
            ranges.push(0..0);
        }
        ranges
    }

    /// Like [`map`](WorkerPool::map), but each worker thread first builds
    /// private state with `init` (a scratch buffer, a pooled accumulator)
    /// that is threaded through its chunk of items — the hook that keeps
    /// parallel hot loops allocation-free in steady state.
    ///
    /// `f` must produce a result that depends only on the item index (and
    /// reusable scratch), never on which worker ran it; chunk boundaries
    /// shift with the granted thread count.
    pub fn map_with<S, T, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if self.threads <= 1 || n == 1 {
            let mut state = init();
            return (0..n).map(|i| f(&mut state, i)).collect();
        }
        // Cooperative pools slice the items and re-lease per slice; slices
        // never hold fewer items than the pool has threads, so a slice's
        // internal parallelism matches the non-cooperative pool's.
        let slice_len = if self.yield_slices > 1 {
            n.div_ceil(self.yield_slices).max(self.threads.min(n))
        } else {
            n
        };
        let owner = owner_key();
        let mut out: Vec<T> = Vec::with_capacity(n);
        let mut start = 0usize;
        while start < n {
            let end = (start + slice_len).min(n);
            self.run_slice(start..end, owner, &init, &f, &mut out);
            start = end;
        }
        out
    }

    /// Runs one leased slice of items, appending results in index order.
    fn run_slice<S, T, I, F>(
        &self,
        range: std::ops::Range<usize>,
        owner: u64,
        init: &I,
        f: &F,
        out: &mut Vec<T>,
    ) where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let n = range.len();
        let budget: &Budget = self.budget().as_ref();
        // Lease extra workers; our own thread always counts as one.
        let want = self.threads.min(n) - 1;
        let granted = if self.yield_slices > 1 {
            budget.acquire_coop(want, self.yield_patience, owner)
        } else {
            budget.acquire(want, owner)
        };
        let lease = Lease { budget, granted };
        let workers = lease.granted + 1;
        if workers == 1 {
            let mut state = init();
            for i in range {
                out.push(f(&mut state, i));
            }
            return;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers - 1);
            for w in 1..workers {
                let lo = range.start + w * chunk;
                if lo >= range.end {
                    break;
                }
                let hi = (lo + chunk).min(range.end);
                handles.push(scope.spawn(move || {
                    let mut state = init();
                    (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<T>>()
                }));
            }
            // This thread processes the first chunk while workers run.
            let mut state = init();
            for i in range.start..(range.start + chunk).min(range.end) {
                out.push(f(&mut state, i));
            }
            for h in handles {
                match h.join() {
                    Ok(part) => out.extend(part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn map_preserves_index_order() {
        for threads in [1usize, 2, 3, 4, 9] {
            let pool = WorkerPool::new(threads);
            let out = pool.map(23, |i| i * 3);
            assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        let pool = WorkerPool::new(4);
        assert!(pool.map(0, |i| i).is_empty());
        assert_eq!(pool.map(1, |i| i + 7), vec![7]);
        // More threads than items.
        assert_eq!(pool.map(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn map_with_reuses_worker_state() {
        let inits = AtomicUsize::new(0);
        let pool = WorkerPool::new(2);
        let out = pool.map_with(
            100,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<u8>::new()
            },
            |scratch, i| {
                scratch.clear();
                scratch.push(i as u8);
                scratch[0]
            },
        );
        assert_eq!(out.len(), 100);
        // One state per worker, not per item.
        assert!(inits.load(Ordering::SeqCst) <= 2 + 1);
    }

    #[test]
    fn chunk_ranges_tile_exactly() {
        for threads in [1usize, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            for n in [0usize, 1, 99, 100, 101, 1000, 4096, 10_000] {
                let ranges = pool.chunk_ranges(n, 100);
                assert!(!ranges.is_empty());
                assert!(ranges.len() <= threads.max(1));
                // Concatenating the ranges reproduces 0..n exactly.
                let mut cursor = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, cursor, "t={threads} n={n}");
                    cursor = r.end;
                }
                assert_eq!(cursor, n, "t={threads} n={n}");
                // Every chunk except possibly the last respects the floor
                // when more than one chunk exists.
                if ranges.len() > 1 {
                    for r in &ranges[..ranges.len() - 1] {
                        assert!(r.len() >= 100, "t={threads} n={n} {r:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_means_machine_parallelism() {
        assert_eq!(WorkerPool::new(0).threads(), default_parallelism());
        assert!(WorkerPool::new(0).threads() >= 1);
    }

    #[test]
    fn budget_limits_but_never_blocks() {
        // Saturate the budget from many pools at once; all must finish and
        // give identical results regardless of what each was granted.
        let expected: Vec<usize> = (0..200).map(|i| i ^ 0x5a).collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let expected = &expected;
                s.spawn(move || {
                    let pool = WorkerPool::new(16);
                    assert_eq!(&pool.map(200, |i| i ^ 0x5a), expected);
                });
            }
        });
    }

    #[test]
    fn cooperative_map_matches_serial_output() {
        let expected: Vec<usize> = (0..257usize).map(|i| i.wrapping_mul(31)).collect();
        for slices in [1usize, 2, 4, 16, 300] {
            let budget = Arc::new(Budget::new(3));
            let pool = WorkerPool::new(4).with_budget(budget).with_yield(slices);
            assert_eq!(pool.map(257, |i| i.wrapping_mul(31)), expected, "{slices}");
        }
    }

    /// The PR 3 leftover, demonstrated: two long jobs on a shared
    /// one-thread budget. Without yield the first lease spans a job's whole
    /// map, so exactly one job ever holds the budget (the other runs inline
    /// start to finish). With cooperative yield the lease is released
    /// between slices and the FIFO handoff bounces it between the jobs.
    #[test]
    fn cooperative_yield_interleaves_two_long_jobs() {
        let work = |i: usize| {
            std::thread::sleep(Duration::from_millis(2));
            i
        };
        let run_pair = |slices: usize, budget: &Arc<Budget>| {
            let start = Barrier::new(2);
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let budget = Arc::clone(budget);
                    let start = &start;
                    s.spawn(move || {
                        let pool = WorkerPool::new(2)
                            .with_budget(budget)
                            .with_yield(slices)
                            .with_yield_patience(Duration::from_millis(500));
                        start.wait();
                        assert_eq!(pool.map(8, work), (0..8).collect::<Vec<_>>());
                    });
                }
            });
        };

        // Cooperative: the lone extra thread must serve BOTH jobs, and the
        // holder sequence must alternate (A…B…A or B…A…B), not serialize.
        let budget = Arc::new(Budget::new(1));
        budget.enable_probe();
        run_pair(4, &budget);
        let events = budget.take_probe();
        let holders: Vec<u64> = events
            .iter()
            .filter(|e| e.granted > 0)
            .map(|e| e.owner)
            .collect();
        let mut owners: Vec<u64> = holders.clone();
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(owners.len(), 2, "both jobs must hold a lease: {events:?}");
        let sandwiched = holders
            .iter()
            .enumerate()
            .any(|(i, &h)| holders[..i].contains(&h) && holders[..i].iter().any(|&o| o != h));
        assert!(sandwiched, "lease never bounced between jobs: {holders:?}");

        // Legacy (slices = 1): the first job to acquire keeps the budget
        // for its entire map, so exactly one distinct owner ever holds it.
        let budget = Arc::new(Budget::new(1));
        budget.enable_probe();
        run_pair(1, &budget);
        let events = budget.take_probe();
        let mut holders: Vec<u64> = events
            .iter()
            .filter(|e| e.granted > 0)
            .map(|e| e.owner)
            .collect();
        holders.sort_unstable();
        holders.dedup();
        assert_eq!(
            holders.len(),
            1,
            "all-or-nothing lease serialized: {events:?}"
        );
    }

    #[test]
    fn coop_acquire_times_out_instead_of_deadlocking() {
        let budget = Budget::new(0);
        let t0 = Instant::now();
        // Nothing will ever be released; the coop acquire must give up.
        assert_eq!(budget.acquire_coop(2, Duration::from_millis(10), 7), 0);
        assert!(t0.elapsed() < Duration::from_secs(5));
        // The abandoned ticket must not wedge later acquires.
        budget.release(1);
        assert_eq!(budget.acquire_coop(1, Duration::from_millis(50), 7), 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(|| {
            pool.map(64, |i| {
                assert!(i != 63, "boom");
                i
            })
        });
        assert!(result.is_err());
        // The lease was returned: a follow-up map still works.
        assert_eq!(pool.map(4, |i| i), vec![0, 1, 2, 3]);
    }
}
