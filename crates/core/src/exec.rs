//! Deterministic chunked intra-node parallelism.
//!
//! The single-host emulation runs all `K` nodes as threads of one process,
//! so naive per-node `rayon`-style parallelism would spawn `K × T` workers
//! and thrash the scheduler at K = 64. [`WorkerPool`] solves both problems:
//!
//! * **Determinism** — `map`/`map_with` return results strictly in item
//!   order, and every work item is a pure function of its index, so the
//!   output is byte-identical for *any* thread count (asserted by
//!   `tests/compute_equivalence.rs`).
//! * **Bounded parallelism** — extra worker threads are leased from a
//!   process-wide budget (defaulting to the machine's available
//!   parallelism). When 64 emulated nodes all request 4 threads at once,
//!   the budget grants what exists and the rest run inline on the node's
//!   own thread; outputs are unaffected.
//!
//! ```
//! use cts_core::exec::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Identical output at any thread count:
//! assert_eq!(squares, WorkerPool::serial().map(8, |i| i * i));
//! ```

use std::sync::{Mutex, OnceLock};

/// The process-wide extra-thread budget.
fn budget() -> &'static Mutex<usize> {
    static BUDGET: OnceLock<Mutex<usize>> = OnceLock::new();
    BUDGET.get_or_init(|| Mutex::new(default_parallelism()))
}

/// The machine's available parallelism (fallback 4 when undetectable).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Leases up to `want` extra threads from the process budget.
fn acquire(want: usize) -> usize {
    let mut b = budget().lock().expect("exec budget lock");
    let granted = want.min(*b);
    *b -= granted;
    granted
}

/// Returns leased threads to the budget. Paired with [`acquire`] via
/// [`Lease`] so panics cannot strand permits.
fn release(n: usize) {
    if n > 0 {
        *budget().lock().expect("exec budget lock") += n;
    }
}

/// RAII lease on extra worker threads.
struct Lease(usize);

impl Drop for Lease {
    fn drop(&mut self) {
        release(self.0);
    }
}

/// A deterministic chunked worker pool.
///
/// The pool itself is a lightweight value (no threads are kept alive
/// between calls); `map`/`map_with` spawn scoped workers per call, bounded
/// by both the configured thread count and the process-wide budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

impl WorkerPool {
    /// A pool targeting `threads` workers; `0` means "use the machine's
    /// available parallelism".
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: if threads == 0 {
                default_parallelism()
            } else {
                threads
            },
        }
    }

    /// The single-threaded pool: every `map` runs inline.
    pub fn serial() -> Self {
        WorkerPool { threads: 1 }
    }

    /// The configured (requested) worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every index in `0..n`, returning results in index
    /// order. Deterministic for any thread count and budget state.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_with(n, || (), |(), i| f(i))
    }

    /// Splits `n` items into at most `threads()` contiguous ranges of at
    /// least `min_per_chunk` items each (one range covering everything when
    /// `n` is small) — the shared chunking plan of the parallel Map hash
    /// and the parallel sort. The plan depends only on `(n, threads,
    /// min_per_chunk)`, never on the runtime thread grant, and concatenating
    /// the ranges in order always reproduces `0..n`.
    pub fn chunk_ranges(&self, n: usize, min_per_chunk: usize) -> Vec<std::ops::Range<usize>> {
        // Floor division: with c chunks every non-final chunk holds
        // ⌈n/c⌉ ≥ n/c ≥ min_per_chunk items, so the floor actually holds.
        let chunks = self.threads.min((n / min_per_chunk.max(1)).max(1));
        let per_chunk = n.div_ceil(chunks);
        let mut ranges = Vec::with_capacity(chunks);
        let mut start = 0usize;
        // Walk cumulative bounds (⌈n/c⌉·c can overshoot n, so a plain
        // c*per_chunk start would invert the tail ranges).
        while start < n {
            let end = (start + per_chunk).min(n);
            ranges.push(start..end);
            start = end;
        }
        if ranges.is_empty() {
            ranges.push(0..0);
        }
        ranges
    }

    /// Like [`map`](WorkerPool::map), but each worker thread first builds
    /// private state with `init` (a scratch buffer, a pooled accumulator)
    /// that is threaded through its chunk of items — the hook that keeps
    /// parallel hot loops allocation-free in steady state.
    ///
    /// `f` must produce a result that depends only on the item index (and
    /// reusable scratch), never on which worker ran it; chunk boundaries
    /// shift with the granted thread count.
    pub fn map_with<S, T, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if self.threads <= 1 || n == 1 {
            let mut state = init();
            return (0..n).map(|i| f(&mut state, i)).collect();
        }
        // Lease extra workers; our own thread always counts as one.
        let lease = Lease(acquire(self.threads.min(n) - 1));
        let workers = lease.0 + 1;
        if workers == 1 {
            let mut state = init();
            return (0..n).map(|i| f(&mut state, i)).collect();
        }
        let chunk = n.div_ceil(workers);
        let mut out: Vec<T> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let f = &f;
            let init = &init;
            let mut handles = Vec::with_capacity(workers - 1);
            for w in 1..workers {
                let lo = w * chunk;
                if lo >= n {
                    break;
                }
                let hi = (lo + chunk).min(n);
                handles.push(scope.spawn(move || {
                    let mut state = init();
                    (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<T>>()
                }));
            }
            // This thread processes the first chunk while workers run.
            let mut state = init();
            for i in 0..chunk.min(n) {
                out.push(f(&mut state, i));
            }
            for h in handles {
                match h.join() {
                    Ok(part) => out.extend(part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_index_order() {
        for threads in [1usize, 2, 3, 4, 9] {
            let pool = WorkerPool::new(threads);
            let out = pool.map(23, |i| i * 3);
            assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        let pool = WorkerPool::new(4);
        assert!(pool.map(0, |i| i).is_empty());
        assert_eq!(pool.map(1, |i| i + 7), vec![7]);
        // More threads than items.
        assert_eq!(pool.map(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn map_with_reuses_worker_state() {
        let inits = AtomicUsize::new(0);
        let pool = WorkerPool::new(2);
        let out = pool.map_with(
            100,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<u8>::new()
            },
            |scratch, i| {
                scratch.clear();
                scratch.push(i as u8);
                scratch[0]
            },
        );
        assert_eq!(out.len(), 100);
        // One state per worker, not per item.
        assert!(inits.load(Ordering::SeqCst) <= 2 + 1);
    }

    #[test]
    fn chunk_ranges_tile_exactly() {
        for threads in [1usize, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            for n in [0usize, 1, 99, 100, 101, 1000, 4096, 10_000] {
                let ranges = pool.chunk_ranges(n, 100);
                assert!(!ranges.is_empty());
                assert!(ranges.len() <= threads.max(1));
                // Concatenating the ranges reproduces 0..n exactly.
                let mut cursor = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, cursor, "t={threads} n={n}");
                    cursor = r.end;
                }
                assert_eq!(cursor, n, "t={threads} n={n}");
                // Every chunk except possibly the last respects the floor
                // when more than one chunk exists.
                if ranges.len() > 1 {
                    for r in &ranges[..ranges.len() - 1] {
                        assert!(r.len() >= 100, "t={threads} n={n} {r:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_means_machine_parallelism() {
        assert_eq!(WorkerPool::new(0).threads(), default_parallelism());
        assert!(WorkerPool::new(0).threads() >= 1);
    }

    #[test]
    fn budget_limits_but_never_blocks() {
        // Saturate the budget from many pools at once; all must finish and
        // give identical results regardless of what each was granted.
        let expected: Vec<usize> = (0..200).map(|i| i ^ 0x5a).collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let expected = &expected;
                s.spawn(move || {
                    let pool = WorkerPool::new(16);
                    assert_eq!(&pool.map(200, |i| i ^ 0x5a), expected);
                });
            }
        });
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(|| {
            pool.map(64, |i| {
                assert!(i != 63, "boom");
                i
            })
        });
        assert!(result.is_err());
        // The lease was returned: a follow-up map still works.
        assert_eq!(pool.map(4, |i| i), vec![0, 1, 2, 3]);
    }
}
