//! Wide XOR kernels.
//!
//! Encoding (paper eq. (8)) and decoding (eq. (10)) are pure XOR folds over
//! byte buffers. These kernels process eight bytes per step on the aligned
//! middle of the buffers and fall back to byte-wise XOR on the edges; on
//! x86-64 LLVM auto-vectorizes the u64 loop to SIMD.

/// XORs `src` into the front of `dst` in place: `dst[i] ^= src[i]` for
/// `i < src.len()`.
///
/// This implements the zero-padding convention of paper footnote 3 ("all
/// segments are zero-padded to the length of the longest one"): XORing a
/// short segment into a longer accumulator leaves the tail untouched, which
/// is exactly XOR with zero padding.
///
/// # Panics
/// Panics if `src.len() > dst.len()` — the accumulator must already be sized
/// to the longest segment.
///
/// ```
/// use cts_core::xor::xor_into;
/// let mut acc = vec![0xFFu8, 0x0F, 0xA0, 0x55];
/// xor_into(&mut acc, &[0xFF, 0x0F]);
/// assert_eq!(acc, vec![0x00, 0x00, 0xA0, 0x55]);
/// ```
#[inline]
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert!(
        src.len() <= dst.len(),
        "xor_into: src ({}) longer than dst ({})",
        src.len(),
        dst.len()
    );
    let dst = &mut dst[..src.len()];
    let mut dst_chunks = dst.chunks_exact_mut(8);
    let mut src_chunks = src.chunks_exact(8);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        let x =
            u64::from_ne_bytes(d.try_into().unwrap()) ^ u64::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d ^= *s;
    }
}

/// Returns `a XOR b`, zero-padding the shorter operand (result length is the
/// max of the two input lengths).
pub fn xor_padded(a: &[u8], b: &[u8]) -> Vec<u8> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = long.to_vec();
    xor_into(&mut out, short);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_basic() {
        let mut d = vec![0b1010u8; 17];
        let s = vec![0b0110u8; 17];
        xor_into(&mut d, &s);
        assert!(d.iter().all(|&b| b == 0b1100));
    }

    #[test]
    fn xor_into_shorter_src_leaves_tail() {
        let mut d = vec![1u8, 2, 3, 4, 5];
        xor_into(&mut d, &[1, 2]);
        assert_eq!(d, vec![0, 0, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "xor_into")]
    fn xor_into_rejects_longer_src() {
        let mut d = vec![0u8; 2];
        xor_into(&mut d, &[0u8; 3]);
    }

    #[test]
    fn xor_is_involution() {
        let a: Vec<u8> = (0..=255u8).collect();
        let mut acc = a.clone();
        let key: Vec<u8> = (0..=255u8).rev().collect();
        xor_into(&mut acc, &key);
        xor_into(&mut acc, &key);
        assert_eq!(acc, a);
    }

    #[test]
    fn xor_padded_takes_max_length() {
        let a = vec![0xFFu8; 3];
        let b = vec![0x0Fu8; 7];
        let out = xor_padded(&a, &b);
        assert_eq!(out.len(), 7);
        assert_eq!(&out[..3], &[0xF0, 0xF0, 0xF0]);
        assert_eq!(&out[3..], &[0x0F; 4]);
        // Symmetry.
        assert_eq!(out, xor_padded(&b, &a));
    }

    #[test]
    fn xor_unaligned_lengths() {
        // Exercise the non-multiple-of-8 remainders.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 31, 63, 100] {
            let a: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 31 + 5) as u8).collect();
            let mut acc = a.clone();
            xor_into(&mut acc, &b);
            for i in 0..len {
                assert_eq!(acc[i], a[i] ^ b[i], "len {len} idx {i}");
            }
        }
    }

    #[test]
    fn three_way_xor_cancels_pairwise() {
        // The decode identity: (x ^ y ^ z) ^ y ^ z == x.
        let x = vec![0xA5u8; 20];
        let y: Vec<u8> = (0..20).map(|i| i as u8).collect();
        let z: Vec<u8> = (0..20).map(|i| (i * i) as u8).collect();
        let mut acc = x.clone();
        xor_into(&mut acc, &y);
        xor_into(&mut acc, &z);
        xor_into(&mut acc, &y);
        xor_into(&mut acc, &z);
        assert_eq!(acc, x);
    }
}
