//! Structured redundant file placement (paper §IV-A).
//!
//! For a redundancy parameter `r ∈ {1, …, K}` the input is split into
//! `N = C(K, r)` files, one per `r`-subset `S` of the node set; file `F_S` is
//! stored on **every** node in `S` (paper eq. (6)). Consequently:
//!
//! * each node stores exactly `C(K-1, r-1)` files (`N·r/K`);
//! * every `r`-subset of nodes has exactly one file in common — the structure
//!   the encoder exploits to form multicast packets.
//!
//! `r = 1` degenerates to conventional TeraSort placement (`K` files, one per
//! node); `r = K` stores the single file everywhere (no shuffle needed).

use crate::combinatorics::{binomial, colex_rank, colex_unrank, combinations_of, Combinations};
use crate::error::{CodedError, Result};
use crate::subset::{NodeId, NodeSet};

/// Dense identifier of an input file; equals the colex rank of the file's
/// node subset `S` among all `r`-subsets of `{0, …, K-1}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// The structured redundant placement for `(K, r)`.
///
/// A `PlacementPlan` is a pure combinatorial object — it owns no data, only
/// the bijection between [`FileId`]s and node subsets. Every node can build
/// the identical plan locally (this is what the paper's *CodeGen* stage
/// computes), so no placement metadata ever crosses the network.
///
/// # Examples
///
/// ```
/// use cts_core::placement::PlacementPlan;
///
/// let plan = PlacementPlan::new(4, 2).unwrap();
/// assert_eq!(plan.num_files(), 6);            // C(4,2)
/// assert_eq!(plan.files_per_node(), 3);       // C(3,1)
/// // Node 1 (paper's "Node 2") stores F_{1,2}, F_{2,3}, F_{2,4}:
/// let files: Vec<String> = plan
///     .files_of_node(1)
///     .map(|f| plan.nodes_of_file(f).display_one_based())
///     .collect();
/// assert_eq!(files, vec!["{1,2}", "{2,3}", "{2,4}"]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementPlan {
    k: usize,
    r: usize,
}

impl PlacementPlan {
    /// Builds the plan for `K` nodes and redundancy `r`.
    ///
    /// # Errors
    /// `InvalidParameters` if `k == 0`, `k > 64`, or `r ∉ {1, …, k}`.
    pub fn new(k: usize, r: usize) -> Result<Self> {
        if k == 0 || k > 64 {
            return Err(CodedError::InvalidParameters {
                what: format!("K must be in 1..=64, got {k}"),
            });
        }
        if r == 0 || r > k {
            return Err(CodedError::InvalidParameters {
                what: format!("r must be in 1..={k}, got {r}"),
            });
        }
        Ok(PlacementPlan { k, r })
    }

    /// Number of nodes `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Redundancy (computation load) `r`: the number of nodes each file is
    /// placed on.
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Total number of input files, `N = C(K, r)`.
    #[inline]
    pub fn num_files(&self) -> u64 {
        binomial(self.k as u64, self.r as u64)
    }

    /// Number of files stored on each node, `C(K-1, r-1)`.
    #[inline]
    pub fn files_per_node(&self) -> u64 {
        binomial((self.k - 1) as u64, (self.r - 1) as u64)
    }

    /// The node subset `S` that file `file` is placed on.
    ///
    /// # Panics
    /// Panics if `file.0 >= num_files()`.
    #[inline]
    pub fn nodes_of_file(&self, file: FileId) -> NodeSet {
        colex_unrank(file.0, self.r, self.k)
    }

    /// The [`FileId`] of the file shared by exactly the nodes in `s`.
    ///
    /// # Errors
    /// `InvalidParameters` if `|s| != r` or `s` contains a node `>= K`.
    pub fn file_of_nodes(&self, s: NodeSet) -> Result<FileId> {
        if s.len() != self.r || !s.is_subset_of(NodeSet::full(self.k)) {
            return Err(CodedError::InvalidParameters {
                what: format!(
                    "file label {s} is not an {}-subset of the {} nodes",
                    self.r, self.k
                ),
            });
        }
        Ok(FileId(colex_rank(s)))
    }

    /// Iterates all files in `FileId` order together with their node sets.
    pub fn iter_files(&self) -> impl Iterator<Item = (FileId, NodeSet)> {
        Combinations::new(self.k, self.r)
            .enumerate()
            .map(|(i, s)| (FileId(i as u64), s))
    }

    /// Iterates the files stored on `node`, in ascending `FileId` order.
    ///
    /// # Panics
    /// Panics if `node >= K`.
    pub fn files_of_node(&self, node: NodeId) -> impl Iterator<Item = FileId> + '_ {
        assert!(node < self.k, "node {node} out of range");
        let rest = NodeSet::full(self.k).without(node);
        let mut ids: Vec<FileId> = combinations_of(rest, self.r - 1)
            .map(|s| FileId(colex_rank(s.with(node))))
            .collect();
        ids.sort_unstable();
        ids.into_iter()
    }

    /// True if `node` stores `file`.
    #[inline]
    pub fn node_has_file(&self, node: NodeId, file: FileId) -> bool {
        self.nodes_of_file(file).contains(node)
    }

    /// The *keep rule* of the Map stage (paper §IV-B): after mapping file
    /// `F_S`, node `k` keeps intermediate `I^t_S` iff `t == k` or `t ∉ S`.
    ///
    /// Intermediates for other nodes in `S` are discarded — those nodes
    /// compute them locally from their own copy of the file.
    #[inline]
    pub fn keeps_intermediate(&self, node: NodeId, file_nodes: NodeSet, target: NodeId) -> bool {
        debug_assert!(file_nodes.contains(node));
        target == node || !file_nodes.contains(target)
    }

    /// Splits `total` items into per-file spans as evenly as possible:
    /// files `0..(total % N)` get one extra item. Returns `(offset, len)` for
    /// `file`, measured in items.
    pub fn file_span(&self, file: FileId, total: u64) -> (u64, u64) {
        let n = self.num_files();
        assert!(file.0 < n);
        let base = total / n;
        let extra = total % n;
        let i = file.0;
        if i < extra {
            (i * (base + 1), base + 1)
        } else {
            (extra * (base + 1) + (i - extra) * base, base)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(PlacementPlan::new(0, 1).is_err());
        assert!(PlacementPlan::new(65, 1).is_err());
        assert!(PlacementPlan::new(4, 0).is_err());
        assert!(PlacementPlan::new(4, 5).is_err());
        assert!(PlacementPlan::new(4, 4).is_ok());
    }

    #[test]
    fn file_counts_match_formulas() {
        for k in 1..=12usize {
            for r in 1..=k {
                let plan = PlacementPlan::new(k, r).unwrap();
                assert_eq!(plan.num_files(), binomial(k as u64, r as u64));
                assert_eq!(
                    plan.files_per_node(),
                    binomial((k - 1) as u64, (r - 1) as u64)
                );
                // Double counting: Σ_nodes files_per_node == N * r.
                assert_eq!(
                    plan.files_per_node() * k as u64,
                    plan.num_files() * r as u64
                );
            }
        }
    }

    #[test]
    fn file_id_roundtrip() {
        let plan = PlacementPlan::new(9, 4).unwrap();
        for (id, s) in plan.iter_files() {
            assert_eq!(plan.nodes_of_file(id), s);
            assert_eq!(plan.file_of_nodes(s).unwrap(), id);
        }
    }

    #[test]
    fn every_r_subset_shares_exactly_one_file() {
        let plan = PlacementPlan::new(7, 3).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (_, s) in plan.iter_files() {
            assert!(seen.insert(s), "duplicate file for {s}");
        }
        assert_eq!(seen.len() as u64, plan.num_files());
    }

    #[test]
    fn files_of_node_matches_membership() {
        let plan = PlacementPlan::new(8, 3).unwrap();
        for node in 0..8 {
            let via_iter: Vec<FileId> = plan.files_of_node(node).collect();
            let via_scan: Vec<FileId> = plan
                .iter_files()
                .filter(|(_, s)| s.contains(node))
                .map(|(id, _)| id)
                .collect();
            assert_eq!(via_iter, via_scan, "node {node}");
            assert_eq!(via_iter.len() as u64, plan.files_per_node());
        }
    }

    #[test]
    fn paper_fig4_placement() {
        // K=4, r=2 (paper Fig. 4): Node 2 (zero-based 1) has files
        // F{1,2}, F{2,3}, F{2,4} in one-based labels.
        let plan = PlacementPlan::new(4, 2).unwrap();
        let labels: Vec<String> = plan
            .files_of_node(1)
            .map(|f| plan.nodes_of_file(f).display_one_based())
            .collect();
        assert_eq!(labels, vec!["{1,2}", "{2,3}", "{2,4}"]);
    }

    #[test]
    fn r1_degenerates_to_terasort_placement() {
        let plan = PlacementPlan::new(5, 1).unwrap();
        assert_eq!(plan.num_files(), 5);
        for node in 0..5 {
            let files: Vec<FileId> = plan.files_of_node(node).collect();
            assert_eq!(files.len(), 1);
            assert_eq!(plan.nodes_of_file(files[0]).to_vec(), vec![node]);
        }
    }

    #[test]
    fn r_equals_k_single_file_everywhere() {
        let plan = PlacementPlan::new(6, 6).unwrap();
        assert_eq!(plan.num_files(), 1);
        assert_eq!(plan.nodes_of_file(FileId(0)), NodeSet::full(6));
    }

    #[test]
    fn keep_rule_matches_paper_fig5() {
        // K=4, r=2, Node 1 maps F{1,2}: keeps I^1, I^3, I^4; discards I^2.
        let plan = PlacementPlan::new(4, 2).unwrap();
        let s = NodeSet::from_iter([0usize, 1]); // {1,2} one-based
        assert!(plan.keeps_intermediate(0, s, 0));
        assert!(!plan.keeps_intermediate(0, s, 1));
        assert!(plan.keeps_intermediate(0, s, 2));
        assert!(plan.keeps_intermediate(0, s, 3));
    }

    #[test]
    fn file_span_partitions_total_exactly() {
        let plan = PlacementPlan::new(5, 2).unwrap(); // N = 10
        for total in [0u64, 1, 9, 10, 11, 1000, 1003] {
            let mut covered = 0u64;
            let mut expected_offset = 0u64;
            for (id, _) in plan.iter_files() {
                let (off, len) = plan.file_span(id, total);
                assert_eq!(off, expected_offset);
                expected_offset += len;
                covered += len;
            }
            assert_eq!(covered, total, "total {total}");
        }
    }

    #[test]
    fn file_span_sizes_differ_by_at_most_one() {
        let plan = PlacementPlan::new(6, 3).unwrap(); // N = 20
        let lens: Vec<u64> = plan
            .iter_files()
            .map(|(id, _)| plan.file_span(id, 1234).1)
            .collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(max - min <= 1);
    }
}
