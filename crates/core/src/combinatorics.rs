//! Binomial coefficients, combination enumeration, and colexicographic
//! ranking.
//!
//! CodedTeraSort's data structures are indexed by fixed-size subsets:
//! `N = C(K, r)` input files (paper eq. (6)) and `C(K, r+1)` multicast groups.
//! To address them with dense integer ids we enumerate subsets in
//! *colexicographic* (colex) order, which admits O(k)-time ranking and
//! unranking via the combinatorial number system.

use crate::subset::{NodeId, NodeSet};

/// `C(n, k)` computed with u128 intermediates, returning `None` on overflow
/// of `u64`.
///
/// For the parameter ranges of this crate (`n ≤ 64`) the result always fits:
/// `C(64, 32) ≈ 1.8e18 < u64::MAX`.
///
/// ```
/// use cts_core::combinatorics::binomial_checked;
/// assert_eq!(binomial_checked(16, 3), Some(560));
/// assert_eq!(binomial_checked(20, 6), Some(38760));
/// assert_eq!(binomial_checked(5, 9), Some(0));
/// ```
pub fn binomial_checked(n: u64, k: u64) -> Option<u64> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // Multiply first, divide after: (acc * (n-i)) is always divisible by
        // (i+1) because acc holds C(n, i) * (partial products are binomials).
        acc = acc.checked_mul((n - i) as u128)?;
        acc /= (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return None;
        }
    }
    Some(acc as u64)
}

/// `C(n, k)`, panicking on u64 overflow (cannot happen for `n ≤ 64`).
///
/// ```
/// use cts_core::combinatorics::binomial;
/// assert_eq!(binomial(4, 2), 6);   // the paper's K=4, r=2 example: 6 files
/// assert_eq!(binomial(16, 4), 1820); // multicast groups at K=16, r=3
/// ```
#[inline]
pub fn binomial(n: u64, k: u64) -> u64 {
    binomial_checked(n, k).expect("binomial overflow")
}

/// Colexicographic rank of `set` among all subsets of its size.
///
/// With members `s_1 < s_2 < … < s_k`, the rank is
/// `Σ_j C(s_j, j)` (combinatorial number system). The universe size is
/// irrelevant: colex order is prefix-stable as `n` grows.
///
/// ```
/// use cts_core::combinatorics::colex_rank;
/// use cts_core::subset::NodeSet;
/// assert_eq!(colex_rank(NodeSet::from_iter([0usize, 1])), 0);
/// assert_eq!(colex_rank(NodeSet::from_iter([0usize, 2])), 1);
/// assert_eq!(colex_rank(NodeSet::from_iter([1usize, 2])), 2);
/// assert_eq!(colex_rank(NodeSet::from_iter([0usize, 3])), 3);
/// ```
pub fn colex_rank(set: NodeSet) -> u64 {
    let mut rank = 0u64;
    for (j, s) in set.iter().enumerate() {
        rank += binomial(s as u64, (j + 1) as u64);
    }
    rank
}

/// Inverse of [`colex_rank`]: the subset of size `k` with the given colex
/// rank, drawn from the universe `{0, …, n-1}`.
///
/// # Panics
/// Panics if `rank >= C(n, k)`.
pub fn colex_unrank(rank: u64, k: usize, n: usize) -> NodeSet {
    assert!(
        rank < binomial(n as u64, k as u64),
        "rank {rank} out of range for C({n},{k})"
    );
    let mut rank = rank;
    let mut set = NodeSet::EMPTY;
    let mut upper = n as u64;
    for j in (1..=k as u64).rev() {
        // Largest c < upper with C(c, j) <= rank.
        let mut c = j - 1; // C(j-1, j) = 0 <= rank always
        for cand in (j - 1..upper).rev() {
            if binomial(cand, j) <= rank {
                c = cand;
                break;
            }
        }
        rank -= binomial(c, j);
        set = set.with(c as NodeId);
        upper = c;
    }
    set
}

/// Iterator over all `k`-subsets of `{0, …, n-1}` in colexicographic order.
///
/// Yields exactly `C(n, k)` sets; the `i`-th yielded set has
/// `colex_rank == i`. Enumeration uses the classic colex successor rule and
/// costs O(1) amortized per subset.
///
/// ```
/// use cts_core::combinatorics::{binomial, Combinations};
/// let all: Vec<_> = Combinations::new(4, 2).collect();
/// assert_eq!(all.len() as u64, binomial(4, 2));
/// assert_eq!(all[0].to_vec(), vec![0, 1]);
/// assert_eq!(all[5].to_vec(), vec![2, 3]);
/// ```
#[derive(Clone)]
pub struct Combinations {
    n: usize,
    k: usize,
    next: Option<NodeSet>,
}

impl Combinations {
    /// All `k`-subsets of `{0, …, n-1}`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n <= 64, "Combinations supports n <= 64");
        let next = if k > n {
            None
        } else {
            Some(NodeSet::full(k)) // {0, …, k-1} is the colex-first subset
        };
        Combinations { n, k, next }
    }

    /// Number of subsets remaining plus already yielded (`C(n, k)`).
    pub fn total(&self) -> u64 {
        binomial(self.n as u64, self.k as u64)
    }
}

impl Iterator for Combinations {
    type Item = NodeSet;

    fn next(&mut self) -> Option<NodeSet> {
        let current = self.next?;
        self.next = colex_successor(current, self.n);
        Some(current)
    }
}

/// The colex successor of `set` within universe `{0, …, n-1}`, or `None` if
/// `set` is the last (i.e. the top `k` elements).
fn colex_successor(set: NodeSet, n: usize) -> Option<NodeSet> {
    if set.is_empty() {
        return None; // the single empty set has no successor
    }
    // Find the smallest member that can be incremented: the first member m
    // such that m+1 is not a member. All smaller members reset to 0,1,2,…
    for (passed, m) in set.iter().enumerate() {
        if !set.contains(m + 1) {
            if m + 1 >= n {
                return None; // m is the top element and the prefix is packed
            }
            let mut next = set.without(m).with(m + 1);
            // Reset the `passed` members below m to {0, …, passed-1}.
            let below = NodeSet::from_bits(set.bits() & ((1u64 << m) - 1));
            next = next.difference(below).union(NodeSet::full(passed));
            return Some(next);
        }
    }
    None
}

/// Iterator over the `k`-subsets of an arbitrary universe set, in colex order
/// of *positions* within the universe.
///
/// Used for per-node enumerations such as "all files stored on node k"
/// (subsets of `K \ {k}` of size `r-1`, each unioned with `{k}`).
pub fn combinations_of(universe: NodeSet, k: usize) -> impl Iterator<Item = NodeSet> {
    let members: Vec<NodeId> = universe.to_vec();
    let n = members.len();
    Combinations::new(n, k)
        .map(move |positions| positions.iter().map(|p| members[p]).collect::<NodeSet>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_table() {
        let expect = [
            (0, 0, 1),
            (1, 0, 1),
            (1, 1, 1),
            (4, 2, 6),
            (16, 3, 560),
            (16, 4, 1820),
            (16, 6, 8008),
            (20, 4, 4845),
            (20, 6, 38760),
            (64, 1, 64),
        ];
        for (n, k, c) in expect {
            assert_eq!(binomial(n, k), c, "C({n},{k})");
        }
    }

    #[test]
    fn binomial_symmetry_and_pascal() {
        for n in 0..=24u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
                if k >= 1 && n >= 1 {
                    assert_eq!(
                        binomial(n, k),
                        binomial(n - 1, k - 1) + binomial(n - 1, k),
                        "Pascal at ({n},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn binomial_k_greater_than_n_is_zero() {
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial_checked(0, 1), Some(0));
    }

    #[test]
    fn binomial_largest_supported() {
        // C(64, 32) fits u64.
        assert_eq!(binomial_checked(64, 32), Some(1_832_624_140_942_590_534));
    }

    #[test]
    fn combinations_count_and_order() {
        for n in 0..=10usize {
            for k in 0..=n {
                let all: Vec<NodeSet> = Combinations::new(n, k).collect();
                assert_eq!(all.len() as u64, binomial(n as u64, k as u64));
                // Ranks are 0..C(n,k) in order.
                for (i, s) in all.iter().enumerate() {
                    assert_eq!(s.len(), k);
                    assert_eq!(colex_rank(*s), i as u64, "rank of {s:?}");
                    assert_eq!(colex_unrank(i as u64, k, n), *s);
                }
                // All distinct.
                let mut sorted = all.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), all.len());
            }
        }
    }

    #[test]
    fn combinations_k_zero_yields_empty_set_once() {
        let all: Vec<NodeSet> = Combinations::new(5, 0).collect();
        assert_eq!(all, vec![NodeSet::EMPTY]);
    }

    #[test]
    fn combinations_k_exceeds_n_is_empty() {
        assert_eq!(Combinations::new(3, 4).count(), 0);
    }

    #[test]
    fn paper_example_k4_r2_files() {
        // Paper §IV-A: K=4, r=2 gives files {1,2},{1,3},{1,4},{2,3},{2,4},{3,4}
        // (one-based). Zero-based colex order:
        let files: Vec<String> = Combinations::new(4, 2)
            .map(|s| s.display_one_based())
            .collect();
        assert_eq!(
            files,
            vec!["{1,2}", "{1,3}", "{2,3}", "{1,4}", "{2,4}", "{3,4}"]
        );
    }

    #[test]
    fn combinations_of_sub_universe() {
        let universe = NodeSet::from_iter([2usize, 5, 9]);
        let pairs: Vec<NodeSet> = combinations_of(universe, 2).collect();
        assert_eq!(pairs.len(), 3);
        for p in &pairs {
            assert!(p.is_subset_of(universe));
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn unrank_rejects_out_of_range() {
        let result = std::panic::catch_unwind(|| colex_unrank(6, 2, 4));
        assert!(result.is_err());
    }

    #[test]
    fn colex_order_matches_bitmask_order() {
        // For equal-size subsets, colex order == numeric order of bitmasks,
        // which is why NodeSet's derived Ord agrees with FileId order.
        let all: Vec<NodeSet> = Combinations::new(8, 3).collect();
        for w in all.windows(2) {
            assert!(w[0].bits() < w[1].bits());
        }
    }
}
