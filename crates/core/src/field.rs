//! The coding field abstraction: GF(2) (XOR, the paper's code) and
//! GF(256) (q-ary linear combinations over SIMD kernels).
//!
//! The coded shuffle's algebra is a linear combination per packet:
//!
//! ```text
//! E_{M,u} = Σ_{t ∈ M\{u}}  c(u, t) ⊙ I^t_{M\{t}, u}
//! ```
//!
//! With [`FieldKind::Gf2`] every coefficient is 1 and `⊙`/`Σ` collapse to
//! the paper's XOR fold (eq. (8)) — that path runs through
//! [`crate::xor::xor_into`] unchanged and stays the byte-identical
//! reference oracle. With [`FieldKind::Gf256`] the coefficients come from
//! the deterministic rule [`FieldKind::coeff`], so a receiver `k` cancels
//! the terms it knows and divides by its own coefficient:
//!
//! ```text
//! I^k_{M\{k}, u} = c(u, k)^{-1} ⊙ (E_{M,u} ⊕ Σ_{t ∈ M\{u,k}} c(u, t) ⊙ I^t_{M\{t}, u})
//! ```
//!
//! (in characteristic 2, subtraction *is* XOR). Because the rule is a pure
//! function of `(sender, target)`, no coefficients travel on the wire —
//! the packet format is identical for both fields; the encoder and
//! decoder simply must agree on the field, which the engine config
//! plumbs end to end. Nontrivial q-ary coefficients are the algebra that
//! MDS-coded groups (any `s` of `n` symbols decode) build on — the
//! prerequisite for fountain-coded shuffle and straggler tolerance.

use crate::gf256;
use crate::subset::NodeId;
use crate::xor::xor_into;

/// The finite field the coded shuffle's linear combinations live in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// Binary field: XOR folds with unit coefficients — the paper's code
    /// and the default. Kept verbatim as the reference oracle.
    #[default]
    Gf2,
    /// `GF(2^8)`: per-segment nonzero coefficients, multiplied by the
    /// runtime-dispatched [`gf256`] kernels (scalar / AVX2 / NEON).
    Gf256,
}

impl FieldKind {
    /// Both fields, for equivalence sweeps.
    pub const ALL: [FieldKind; 2] = [FieldKind::Gf2, FieldKind::Gf256];

    /// The coefficient attached to target `t`'s segment in sender `u`'s
    /// packet.
    ///
    /// GF(2) always answers 1. GF(256) answers `α^((31·u + 7·t + 1) mod 255)`
    /// — a power of the generator, hence never zero, which is the only
    /// property per-packet cancellation decoding needs (each receiver
    /// divides by its own coefficient; it never solves across packets).
    #[inline]
    pub fn coeff(self, sender: NodeId, target: NodeId) -> u8 {
        match self {
            FieldKind::Gf2 => 1,
            FieldKind::Gf256 => gf256::EXP[(31 * sender + 7 * target + 1) % 255],
        }
    }

    /// `dst[i] ^= c ⊙ src[i]` for `i < src.len()` — encode accumulation
    /// and decode cancellation, zero-padding like
    /// [`xor_into`].
    ///
    /// # Panics
    /// Panics if `src.len() > dst.len()`, or (GF(2)) if `c != 1` — unit
    /// coefficients are structural in the binary field.
    #[inline]
    pub fn add_scaled(self, dst: &mut [u8], src: &[u8], c: u8) {
        match self {
            FieldKind::Gf2 => {
                assert!(c == 1, "gf2: coefficients are always 1, got {c}");
                xor_into(dst, src);
            }
            FieldKind::Gf256 => gf256::add_scaled_slice(dst, src, c),
        }
    }

    /// `buf[i] = c ⊙ buf[i]` — the decoder's final scaling by the inverse
    /// coefficient. A no-op in GF(2) (`c` is necessarily 1).
    #[inline]
    pub fn scale(self, buf: &mut [u8], c: u8) {
        match self {
            FieldKind::Gf2 => {
                assert!(c == 1, "gf2: coefficients are always 1, got {c}");
            }
            FieldKind::Gf256 => gf256::mul_slice(buf, c),
        }
    }

    /// Whether this field supports nontrivial MDS-coded groups (any
    /// `s`-of-`n` quorum decode via [`crate::solve::GroupSolver`]).
    ///
    /// GF(256) does: the Vandermonde mix in [`crate::solve::mds_row`]
    /// needs `K` distinct nonzero evaluation points, which `α^u` provides
    /// for every rank the 24-bit tag space can name. GF(2) has only one
    /// nonzero element, so no nontrivial binary MDS code exists at these
    /// lengths — quorum mode over GF(2) degenerates to waiting for every
    /// packet (the engine still polls instead of barriering, but releases
    /// nothing early).
    #[inline]
    pub fn supports_quorum(self) -> bool {
        matches!(self, FieldKind::Gf256)
    }

    /// Multiplicative inverse of a nonzero coefficient.
    ///
    /// # Panics
    /// Panics on `c = 0` (GF(256)) or `c != 1` (GF(2)).
    #[inline]
    pub fn inv(self, c: u8) -> u8 {
        match self {
            FieldKind::Gf2 => {
                assert!(c == 1, "gf2: coefficients are always 1, got {c}");
                1
            }
            FieldKind::Gf256 => gf256::inv(c),
        }
    }
}

impl std::fmt::Display for FieldKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FieldKind::Gf2 => "gf2",
            FieldKind::Gf256 => "gf256",
        })
    }
}

impl std::str::FromStr for FieldKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "gf2" => Ok(FieldKind::Gf2),
            "gf256" => Ok(FieldKind::Gf256),
            other => Err(format!("unknown field `{other}` (expected gf2|gf256)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf2_coeffs_are_unit() {
        for u in 0..20 {
            for t in 0..20 {
                assert_eq!(FieldKind::Gf2.coeff(u, t), 1);
            }
        }
    }

    #[test]
    fn gf256_coeffs_are_nonzero_for_all_rank_pairs() {
        for u in 0..128 {
            for t in 0..128 {
                assert_ne!(FieldKind::Gf256.coeff(u, t), 0, "({u}, {t})");
            }
        }
    }

    #[test]
    fn gf256_coeffs_vary_with_both_endpoints() {
        let f = FieldKind::Gf256;
        assert_ne!(f.coeff(0, 1), f.coeff(0, 2));
        assert_ne!(f.coeff(0, 1), f.coeff(1, 1));
    }

    #[test]
    fn gf2_add_scaled_is_xor() {
        let mut a = vec![0b1100u8; 9];
        FieldKind::Gf2.add_scaled(&mut a, &[0b1010u8; 9], 1);
        assert!(a.iter().all(|&b| b == 0b0110));
    }

    #[test]
    #[should_panic(expected = "coefficients are always 1")]
    fn gf2_rejects_nonunit_coeff() {
        FieldKind::Gf2.add_scaled(&mut [0u8; 4], &[0u8; 4], 2);
    }

    #[test]
    fn scale_then_inverse_scale_roundtrips() {
        let original: Vec<u8> = (0..100).map(|i| (i * 3 + 1) as u8).collect();
        for f in FieldKind::ALL {
            let c = f.coeff(3, 5);
            let mut buf = original.clone();
            f.scale(&mut buf, c);
            f.scale(&mut buf, f.inv(c));
            assert_eq!(buf, original, "{f}");
        }
    }

    #[test]
    fn parse_display_roundtrip() {
        for f in FieldKind::ALL {
            assert_eq!(f.to_string().parse::<FieldKind>().unwrap(), f);
        }
        assert!("gf7".parse::<FieldKind>().is_err());
        assert_eq!(FieldKind::default(), FieldKind::Gf2);
    }
}
