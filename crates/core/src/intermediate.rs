//! Storage for Map-stage intermediate values.
//!
//! The Map stage hashes each local file `F` into `K` intermediate values
//! `{I^1_F, …, I^K_F}` — serialized byte buffers of the KV pairs destined to
//! each reduce partition. [`MapOutputStore`] holds the values a node *keeps*
//! under the paper's §IV-B rule and serves them to the encoder/decoder via
//! the [`IntermediateSource`] trait.

use std::collections::HashMap;

use bytes::Bytes;

use crate::subset::{NodeId, NodeSet};

/// Read access to locally known intermediate values `I^t_F`.
///
/// The encoder needs `I^t_{M\{t}}` for every other member `t` of each of its
/// multicast groups; the decoder needs the same values to cancel known
/// segments out of received packets. Both only ever request values the keep
/// rule guarantees to be present — a `None` therefore indicates a protocol
/// violation, not an expected condition.
pub trait IntermediateSource {
    /// Returns `I^t_F` (serialized KV pairs of file `F` for reduce target
    /// `t`) if locally known.
    fn intermediate(&self, target: NodeId, file: NodeSet) -> Option<&[u8]>;
}

/// In-memory store of kept intermediate values, keyed by `(target, file)`.
///
/// ```
/// use cts_core::intermediate::{IntermediateSource, MapOutputStore};
/// use cts_core::subset::NodeSet;
///
/// let mut store = MapOutputStore::new();
/// let file = NodeSet::from_iter([0usize, 1]);
/// store.insert(2, file, vec![1, 2, 3].into());
/// assert_eq!(store.intermediate(2, file), Some(&[1u8, 2, 3][..]));
/// assert_eq!(store.intermediate(3, file), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MapOutputStore {
    values: HashMap<(NodeId, u64), Bytes>,
    total_bytes: u64,
}

impl MapOutputStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `I^target_file`. Replaces and returns any previous value.
    pub fn insert(&mut self, target: NodeId, file: NodeSet, data: Bytes) -> Option<Bytes> {
        self.total_bytes += data.len() as u64;
        let old = self.values.insert((target, file.bits()), data);
        if let Some(ref o) = old {
            self.total_bytes -= o.len() as u64;
        }
        old
    }

    /// Removes and returns `I^target_file`.
    pub fn remove(&mut self, target: NodeId, file: NodeSet) -> Option<Bytes> {
        let old = self.values.remove(&(target, file.bits()));
        if let Some(ref o) = old {
            self.total_bytes -= o.len() as u64;
        }
        old
    }

    /// Borrowed access as [`Bytes`] (cheaply cloneable).
    pub fn get(&self, target: NodeId, file: NodeSet) -> Option<&Bytes> {
        self.values.get(&(target, file.bits()))
    }

    /// Number of stored intermediate values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sum of stored payload lengths — the memory-overhead quantity the
    /// paper's §V-C Reduce discussion refers to.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Iterates `(target, file, data)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeSet, &Bytes)> {
        self.values
            .iter()
            .map(|(&(t, bits), d)| (t, NodeSet::from_bits(bits), d))
    }

    /// Drains all values for reduce target `target` (used when feeding the
    /// local Reduce stage), in ascending file order.
    pub fn take_for_target(&mut self, target: NodeId) -> Vec<(NodeSet, Bytes)> {
        let mut keys: Vec<u64> = self
            .values
            .keys()
            .filter(|(t, _)| *t == target)
            .map(|(_, bits)| *bits)
            .collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|bits| {
                let data = self.remove(target, NodeSet::from_bits(bits)).unwrap();
                (NodeSet::from_bits(bits), data)
            })
            .collect()
    }
}

impl IntermediateSource for MapOutputStore {
    fn intermediate(&self, target: NodeId, file: NodeSet) -> Option<&[u8]> {
        self.values.get(&(target, file.bits())).map(|b| b.as_ref())
    }
}

impl<S: IntermediateSource + ?Sized> IntermediateSource for &S {
    fn intermediate(&self, target: NodeId, file: NodeSet) -> Option<&[u8]> {
        (**self).intermediate(target, file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(nodes: &[usize]) -> NodeSet {
        nodes.iter().copied().collect()
    }

    #[test]
    fn insert_get_remove() {
        let mut store = MapOutputStore::new();
        assert!(store.is_empty());
        store.insert(0, fs(&[0, 1]), Bytes::from_static(b"abc"));
        store.insert(2, fs(&[0, 1]), Bytes::from_static(b"defg"));
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_bytes(), 7);
        assert_eq!(store.intermediate(0, fs(&[0, 1])), Some(&b"abc"[..]));
        let removed = store.remove(0, fs(&[0, 1])).unwrap();
        assert_eq!(&removed[..], b"abc");
        assert_eq!(store.total_bytes(), 4);
        assert_eq!(store.intermediate(0, fs(&[0, 1])), None);
    }

    #[test]
    fn replace_adjusts_byte_count() {
        let mut store = MapOutputStore::new();
        store.insert(1, fs(&[1, 2]), Bytes::from_static(b"xxxx"));
        let old = store.insert(1, fs(&[1, 2]), Bytes::from_static(b"yy"));
        assert_eq!(old.as_deref(), Some(&b"xxxx"[..]));
        assert_eq!(store.total_bytes(), 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn same_file_different_targets_are_distinct() {
        let mut store = MapOutputStore::new();
        let f = fs(&[2, 3]);
        store.insert(0, f, Bytes::from_static(b"a"));
        store.insert(1, f, Bytes::from_static(b"b"));
        assert_eq!(store.intermediate(0, f), Some(&b"a"[..]));
        assert_eq!(store.intermediate(1, f), Some(&b"b"[..]));
    }

    #[test]
    fn take_for_target_is_sorted_and_exhaustive() {
        let mut store = MapOutputStore::new();
        store.insert(0, fs(&[0, 3]), Bytes::from_static(b"late"));
        store.insert(0, fs(&[0, 1]), Bytes::from_static(b"early"));
        store.insert(1, fs(&[1, 2]), Bytes::from_static(b"other"));
        let taken = store.take_for_target(0);
        assert_eq!(taken.len(), 2);
        assert!(taken[0].0.bits() < taken[1].0.bits());
        assert_eq!(store.len(), 1); // target 1 untouched
    }

    #[test]
    fn empty_payloads_are_representable() {
        let mut store = MapOutputStore::new();
        store.insert(0, fs(&[0, 1]), Bytes::new());
        assert_eq!(store.intermediate(0, fs(&[0, 1])), Some(&[][..]));
        assert_eq!(store.total_bytes(), 0);
    }
}
