//! Per-group GF(256) linear solves for MDS-coded groups.
//!
//! The per-packet cancel-and-divide decoder ([`crate::decode::Decoder`])
//! gives each receiver a *diagonal* system: sender `u`'s packet yields
//! exactly one segment, so all `r` packets are needed. MDS-coded groups
//! change the encode so that each packet carries a *mix* of all `s`
//! parts of the receiver's intermediate, and any `s` of the `r` expected
//! packets reach full rank:
//!
//! ```text
//! sender u's term for target t:   c(u,t) ⊙ Σ_{j<s} v_u^j ⊙ part_j(I^t)
//! ```
//!
//! where `c(u,t)` is the deterministic PR-5 coefficient rule
//! ([`FieldKind::coeff`]) and `v_u = α^u` ([`mds_point`]) is a distinct
//! nonzero evaluation point per sender. After the receiver cancels every
//! term it knows, sender `u` contributes one equation with coefficient
//! row `c(u,k) · [v_u^0, …, v_u^{s-1}]` — a nonzero scalar times a
//! Vandermonde row with distinct points, so **every** `s`-subset of rows
//! is nonsingular: a true Reed–Solomon/MDS property, proven by
//! `crates/core/tests/solve_props.rs` over random subsets.
//!
//! [`GroupSolver`] is the incremental Gauss–Jordan eliminator behind
//! that: equations stream in as packets arrive, rank is tracked, and the
//! group releases the moment rank hits `s`. Singular, underdetermined,
//! and inconsistent systems are reported as
//! [`CodedError::SingularSystem`] — never panicked — because on a real
//! fabric a bad equation is just another flavour of packet loss.

use crate::error::{CodedError, Result};
use crate::field::FieldKind;
use crate::gf256;
use crate::subset::NodeId;

/// Number of MDS parts a quorum-coded group of `group_size` members
/// splits each intermediate into: `s = r − 1` (group size is `r + 1`),
/// clamped to 1. A receiver expects `r` coded packets and needs any `s`
/// of them, so exactly one straggling or dead sender per group is
/// tolerated — matching the placement's `r`-fold redundancy budget.
#[inline]
pub fn mds_parts(group_size: usize) -> usize {
    group_size.saturating_sub(2).max(1)
}

/// MDS evaluation point for `sender`: `α^sender`. Distinct and nonzero
/// for every rank below 255, which covers the K ≤ 128 deployments the
/// node-set type supports.
#[inline]
pub fn mds_point(sender: NodeId) -> u8 {
    gf256::EXP[sender % 255]
}

/// The coefficient row receiver `k` attributes to sender `u`'s packet in
/// an `s`-part MDS group: `c(u,k) · [v_u^0, …, v_u^{s-1}]`.
///
/// `field` must be GF(256) — the only field with enough distinct points.
pub fn mds_row(field: FieldKind, sender: NodeId, receiver: NodeId, s: usize) -> Vec<u8> {
    debug_assert!(field.supports_quorum(), "mds_row needs gf256");
    let c = field.coeff(sender, receiver);
    let v = mds_point(sender);
    let mut row = Vec::with_capacity(s);
    let mut w = c;
    for _ in 0..s {
        row.push(w);
        w = gf256::mul(w, v);
    }
    row
}

/// One stored row of the reduced system: the coefficient vector (its
/// pivot column holds 1, all other *pivot* columns hold 0) and the
/// matching right-hand-side byte buffer.
#[derive(Clone, Debug)]
struct Row {
    coeffs: Vec<u8>,
    rhs: Vec<u8>,
}

/// Incremental Gauss–Jordan elimination over GF(256).
///
/// Coefficient arithmetic is scalar (rows are at most 16 bytes — the
/// node-set width); right-hand-side buffers are segment-sized and go
/// through the SIMD-dispatched [`gf256`] slice kernels.
///
/// ```
/// use cts_core::solve::GroupSolver;
///
/// // x0 ^ x1 = [3], x1 = [1]  →  x0 = [2], x1 = [1]
/// let mut s = GroupSolver::new(2, 1);
/// assert!(s.add_equation(&[1, 1], &[3]).unwrap());
/// assert!(s.add_equation(&[0, 1], &[1]).unwrap());
/// assert_eq!(s.solve().unwrap(), vec![vec![2u8], vec![1u8]]);
/// ```
#[derive(Clone, Debug)]
pub struct GroupSolver {
    unknowns: usize,
    seg_len: usize,
    /// Indexed by pivot column; `None` until that column has a pivot.
    rows: Vec<Option<Row>>,
    rank: usize,
}

impl GroupSolver {
    /// A solver for `unknowns` parts of `seg_len` bytes each.
    pub fn new(unknowns: usize, seg_len: usize) -> GroupSolver {
        GroupSolver {
            unknowns,
            seg_len,
            rows: (0..unknowns).map(|_| None).collect(),
            rank: 0,
        }
    }

    /// Current rank of the accumulated coefficient matrix.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of unknown parts.
    pub fn unknowns(&self) -> usize {
        self.unknowns
    }

    /// Whether the system has reached full rank (a unique solution).
    pub fn is_complete(&self) -> bool {
        self.rank == self.unknowns
    }

    /// Feeds one equation `Σ_j coeffs[j] ⊙ part_j = rhs` into the
    /// eliminator. Returns `Ok(true)` if the equation increased the rank,
    /// `Ok(false)` if it was linearly dependent on (and consistent with)
    /// what is already known — a benign duplicate.
    ///
    /// # Errors
    /// [`CodedError::SingularSystem`] if the equation contradicts an
    /// earlier one (same span, different bytes), and
    /// [`CodedError::InvalidParameters`] on length mismatches. Never
    /// panics.
    pub fn add_equation(&mut self, coeffs: &[u8], rhs: &[u8]) -> Result<bool> {
        if coeffs.len() != self.unknowns {
            return Err(CodedError::InvalidParameters {
                what: format!(
                    "equation has {} coefficients, solver wants {}",
                    coeffs.len(),
                    self.unknowns
                ),
            });
        }
        if rhs.len() != self.seg_len {
            return Err(CodedError::InvalidParameters {
                what: format!(
                    "equation rhs is {} bytes, solver wants {}",
                    rhs.len(),
                    self.seg_len
                ),
            });
        }
        let mut c = coeffs.to_vec();
        let mut b = rhs.to_vec();
        // Forward-eliminate against every existing pivot.
        for col in 0..self.unknowns {
            if c[col] == 0 {
                continue;
            }
            if let Some(row) = &self.rows[col] {
                let f = c[col];
                for (cj, &rj) in c[col..].iter_mut().zip(&row.coeffs[col..]) {
                    *cj ^= gf256::mul(f, rj);
                }
                gf256::add_scaled_slice(&mut b, &row.rhs, f);
            }
        }
        let Some(p) = c.iter().position(|&x| x != 0) else {
            // Fully eliminated: either a consistent duplicate or a
            // contradiction.
            if b.iter().all(|&x| x == 0) {
                return Ok(false);
            }
            return Err(CodedError::SingularSystem {
                rank: self.rank,
                need: self.unknowns,
                what: "equation contradicts an earlier one".into(),
            });
        };
        // Normalize the pivot to 1.
        let inv = gf256::inv(c[p]);
        for x in c.iter_mut().skip(p) {
            *x = gf256::mul(*x, inv);
        }
        gf256::mul_slice(&mut b, inv);
        // Back-eliminate the new pivot column from every stored row, so
        // the system stays in reduced form and `solve` is a read-off.
        for q in 0..self.unknowns {
            if let Some(row) = &mut self.rows[q] {
                let f = row.coeffs[p];
                if f != 0 {
                    for (rj, &cj) in row.coeffs.iter_mut().zip(&c) {
                        *rj ^= gf256::mul(f, cj);
                    }
                    gf256::add_scaled_slice(&mut row.rhs, &b, f);
                }
            }
        }
        self.rows[p] = Some(Row { coeffs: c, rhs: b });
        self.rank += 1;
        Ok(true)
    }

    /// Solves the system, consuming the solver: part `j` of the result is
    /// the `seg_len`-byte buffer for unknown `j`.
    ///
    /// # Errors
    /// [`CodedError::SingularSystem`] if the system is underdetermined
    /// (rank below the number of unknowns). Never panics.
    pub fn solve(self) -> Result<Vec<Vec<u8>>> {
        if !self.is_complete() {
            return Err(CodedError::SingularSystem {
                rank: self.rank,
                need: self.unknowns,
                what: "underdetermined: need more independent equations".into(),
            });
        }
        // Full rank in reduced form: every column is a pivot and every
        // stored row is a unit vector, so rhs[j] *is* part j.
        let mut out = Vec::with_capacity(self.unknowns);
        for row in self.rows {
            let row = row.expect("full rank has a pivot in every column");
            debug_assert!(row.coeffs.iter().filter(|&&x| x != 0).count() == 1);
            out.push(row.rhs);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_system_solves_trivially() {
        let mut s = GroupSolver::new(3, 4);
        for j in 0..3 {
            let mut coeffs = vec![0u8; 3];
            coeffs[j] = 1;
            assert!(s.add_equation(&coeffs, &[j as u8; 4]).unwrap());
        }
        let parts = s.solve().unwrap();
        for (j, p) in parts.iter().enumerate() {
            assert_eq!(p, &vec![j as u8; 4]);
        }
    }

    #[test]
    fn mds_rows_reach_full_rank_from_any_subset() {
        // Group {0..=4}: receiver 4, senders 0..4, s = 3 parts.
        let s = 3;
        let parts: Vec<Vec<u8>> = (0..s).map(|j| vec![(j * 17 + 3) as u8; 8]).collect();
        for skip in 0..4usize {
            let mut solver = GroupSolver::new(s, 8);
            for u in (0..4usize).filter(|&u| u != skip) {
                let row = mds_row(FieldKind::Gf256, u, 4, s);
                let mut rhs = vec![0u8; 8];
                for (j, p) in parts.iter().enumerate() {
                    gf256::add_scaled_slice(&mut rhs, p, row[j]);
                }
                solver.add_equation(&row, &rhs).unwrap();
            }
            assert!(solver.is_complete(), "skip={skip}");
            assert_eq!(solver.solve().unwrap(), parts, "skip={skip}");
        }
    }

    #[test]
    fn duplicate_equation_is_benign() {
        let mut s = GroupSolver::new(2, 2);
        assert!(s.add_equation(&[1, 2], &[5, 6]).unwrap());
        assert!(!s.add_equation(&[1, 2], &[5, 6]).unwrap());
        assert_eq!(s.rank(), 1);
    }

    #[test]
    fn contradiction_is_an_error_not_a_panic() {
        let mut s = GroupSolver::new(2, 2);
        s.add_equation(&[1, 2], &[5, 6]).unwrap();
        let err = s.add_equation(&[1, 2], &[5, 7]).unwrap_err();
        assert!(matches!(err, CodedError::SingularSystem { .. }));
    }

    #[test]
    fn underdetermined_solve_is_an_error() {
        let mut s = GroupSolver::new(3, 1);
        s.add_equation(&[1, 1, 0], &[9]).unwrap();
        let err = s.solve().unwrap_err();
        assert!(matches!(
            err,
            CodedError::SingularSystem {
                rank: 1,
                need: 3,
                ..
            }
        ));
    }

    #[test]
    fn length_mismatches_are_errors() {
        let mut s = GroupSolver::new(2, 4);
        assert!(s.add_equation(&[1], &[0; 4]).is_err());
        assert!(s.add_equation(&[1, 0], &[0; 3]).is_err());
    }

    #[test]
    fn mds_parts_and_points() {
        assert_eq!(mds_parts(3), 1); // r = 2 → replication
        assert_eq!(mds_parts(4), 2); // r = 3 → any 2 of 3
        assert_eq!(mds_parts(2), 1); // r = 1 → single sender
        let points: Vec<u8> = (0..128).map(mds_point).collect();
        let distinct: std::collections::HashSet<u8> = points.iter().copied().collect();
        assert_eq!(distinct.len(), 128, "points must be distinct");
        assert!(points.iter().all(|&v| v != 0));
    }
}
