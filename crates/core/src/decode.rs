//! Decoding of coded packets — paper §IV-E, Algorithm 2.
//!
//! On receipt of `E_{M,u}` from sender `u`, node `k` XORs out the segments
//! it already knows from its own Map stage,
//!
//! ```text
//! E_{M,u} ⊕ (⊕_{t ∈ M\{u,k}} I^t_{M\{t}, u})  =  I^k_{M\{k}, u}
//! ```
//!
//! recovering the `u`-indexed segment of the intermediate value `I^k_{M\{k}}`
//! it is missing (eq. (10)). Collecting one segment from each of the `r`
//! senders in the group and merging them in ascending sender position yields
//! the complete `I^k_{M\{k}}`.

use std::collections::HashMap;

use crate::error::{CodedError, Result};
use crate::groups::MulticastGroups;
use crate::intermediate::IntermediateSource;
use crate::packet::CodedPacket;
use crate::segment::{segment_slice, segment_span};
use crate::subset::{NodeId, NodeSet};
use crate::xor::xor_into;

/// A segment of a needed intermediate value recovered from one packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedSegment {
    /// The file label `F = M\{k}` the segment belongs to.
    pub file: NodeSet,
    /// The sender the segment is indexed by (`u` in eq. (10)).
    pub sender: NodeId,
    /// Zero-based position of this segment within the reassembled value
    /// (= position of `sender` within `F`).
    pub position: usize,
    /// The recovered bytes, already trimmed to the original length.
    pub data: Vec<u8>,
}

/// Per-node decoder for the coded shuffle.
#[derive(Clone, Debug)]
pub struct Decoder {
    groups: MulticastGroups,
    node: NodeId,
}

impl Decoder {
    /// Decoder for `node` in a `(K, r)` deployment.
    ///
    /// # Errors
    /// `InvalidParameters` if `(k, r)` is invalid or `node >= k`.
    pub fn new(k: usize, r: usize, node: NodeId) -> Result<Self> {
        let groups = MulticastGroups::new(k, r)?;
        if node >= k {
            return Err(CodedError::InvalidParameters {
                what: format!("node {node} out of range for K = {k}"),
            });
        }
        Ok(Decoder { groups, node })
    }

    /// The node this decoder belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Recovers this node's segment from one received packet (eq. (10)).
    ///
    /// # Errors
    /// * `PlanMismatch` if the packet's group does not include this node, or
    ///   the group size disagrees with `r+1`, or this node is the sender;
    /// * `MalformedPacket` if the packet lacks a segment length for this
    ///   node or the payload is shorter than a known segment requires;
    /// * `MissingIntermediate` if a cancelling value is locally absent.
    pub fn decode_packet<S: IntermediateSource>(
        &self,
        packet: &CodedPacket,
        source: &S,
    ) -> Result<DecodedSegment> {
        let m = packet.group;
        if m.len() != self.groups.group_size() {
            return Err(CodedError::PlanMismatch {
                what: format!(
                    "packet group {m} has {} members, expected {}",
                    m.len(),
                    self.groups.group_size()
                ),
            });
        }
        if !m.contains(self.node) || packet.sender == self.node {
            return Err(CodedError::PlanMismatch {
                what: format!(
                    "packet for group {m} from {} not decodable at node {}",
                    packet.sender, self.node
                ),
            });
        }
        let my_len = packet
            .seg_len_for(self.node)
            .ok_or_else(|| CodedError::MalformedPacket {
                what: format!("no segment length for receiver {}", self.node),
            })? as usize;
        if my_len > packet.payload.len() {
            return Err(CodedError::MalformedPacket {
                what: format!(
                    "declared segment length {my_len} exceeds payload {}",
                    packet.payload.len()
                ),
            });
        }

        // Cancel the locally known segments: t ∈ M \ {u, k}.
        let mut acc = packet.payload.clone();
        for t in m.iter().filter(|&t| t != packet.sender && t != self.node) {
            let file = m.without(t);
            let data = source
                .intermediate(t, file)
                .ok_or(CodedError::MissingIntermediate { target: t, file })?;
            let seg = segment_slice(data, file, packet.sender);
            if seg.len() > acc.len() {
                return Err(CodedError::MalformedPacket {
                    what: format!(
                        "payload {} bytes cannot contain known segment of {}",
                        acc.len(),
                        seg.len()
                    ),
                });
            }
            xor_into(&mut acc, seg);
        }

        let file = m.without(self.node);
        acc.truncate(my_len);
        let position = file
            .position_of(packet.sender)
            .expect("sender is in M\\{node} by construction");
        Ok(DecodedSegment {
            file,
            sender: packet.sender,
            position,
            data: acc,
        })
    }

    /// Group enumeration shared with the encoder.
    pub fn groups(&self) -> &MulticastGroups {
        &self.groups
    }
}

/// Reassembles the `r` decoded segments of one intermediate value
/// `I^k_{F}` (paper: "merge them back").
#[derive(Clone, Debug)]
pub struct SegmentAssembler {
    file: NodeSet,
    pieces: Vec<Option<Vec<u8>>>,
    received: usize,
}

impl SegmentAssembler {
    /// Assembler for the intermediate of file `F` (`|F| = r` pieces).
    pub fn new(file: NodeSet) -> Self {
        let r = file.len();
        SegmentAssembler {
            file,
            pieces: vec![None; r],
            received: 0,
        }
    }

    /// The file being reassembled.
    pub fn file(&self) -> NodeSet {
        self.file
    }

    /// Adds one decoded segment.
    ///
    /// # Errors
    /// `MalformedPacket` if the segment's file disagrees, the position is out
    /// of range, or the slot is already filled with different data.
    pub fn add(&mut self, seg: DecodedSegment) -> Result<()> {
        if seg.file != self.file {
            return Err(CodedError::MalformedPacket {
                what: format!(
                    "segment for {} fed to assembler for {}",
                    seg.file, self.file
                ),
            });
        }
        if seg.position >= self.pieces.len() {
            return Err(CodedError::MalformedPacket {
                what: format!("segment position {} out of range", seg.position),
            });
        }
        match &self.pieces[seg.position] {
            Some(existing) if *existing != seg.data => Err(CodedError::MalformedPacket {
                what: format!("conflicting duplicate segment at position {}", seg.position),
            }),
            Some(_) => Ok(()), // benign duplicate
            None => {
                self.pieces[seg.position] = Some(seg.data);
                self.received += 1;
                Ok(())
            }
        }
    }

    /// True once all `r` segments are present.
    pub fn is_complete(&self) -> bool {
        self.received == self.pieces.len()
    }

    /// Concatenates the segments into the full intermediate value, verifying
    /// that each piece has the length the deterministic split implies.
    ///
    /// # Errors
    /// `MalformedPacket` if incomplete or if piece lengths are inconsistent
    /// with the split rule of eq. (7).
    pub fn assemble(self) -> Result<Vec<u8>> {
        if !self.is_complete() {
            return Err(CodedError::MalformedPacket {
                what: format!(
                    "assembling {} with only {}/{} segments",
                    self.file,
                    self.received,
                    self.pieces.len()
                ),
            });
        }
        let parts = self.pieces.len();
        let total: usize = self.pieces.iter().map(|p| p.as_ref().unwrap().len()).sum();
        let mut out = Vec::with_capacity(total);
        for (i, piece) in self.pieces.into_iter().enumerate() {
            let piece = piece.unwrap();
            let expected = segment_span(total, parts, i).len;
            if piece.len() != expected {
                return Err(CodedError::MalformedPacket {
                    what: format!(
                        "segment {i} has {} bytes, split rule implies {expected}",
                        piece.len()
                    ),
                });
            }
            out.extend_from_slice(&piece);
        }
        Ok(out)
    }
}

/// Drives decoding across all groups of a node: feeds packets in any order,
/// emits completed intermediate values `(file, bytes)` as they finish.
///
/// This is the receive-side state machine of the Multicast Shuffling stage:
/// a node expects `r` packets per group for each of its `C(K-1, r)` groups
/// and finishes with `C(K-1, r)` recovered intermediates — exactly the
/// `{I^k_S : k ∉ S}` set of paper §IV-E.
#[derive(Debug)]
pub struct DecodePipeline {
    decoder: Decoder,
    assemblers: HashMap<u64, SegmentAssembler>,
}

impl DecodePipeline {
    /// Pipeline for `node` in a `(K, r)` deployment.
    pub fn new(k: usize, r: usize, node: NodeId) -> Result<Self> {
        Ok(DecodePipeline {
            decoder: Decoder::new(k, r, node)?,
            assemblers: HashMap::new(),
        })
    }

    /// Number of intermediates this node must recover in total.
    pub fn expected_total(&self) -> u64 {
        self.decoder.groups.groups_per_node()
    }

    /// Processes one received packet; returns the completed `(file, value)`
    /// if this packet was the last segment of its group.
    pub fn accept<S: IntermediateSource>(
        &mut self,
        packet: &CodedPacket,
        source: &S,
    ) -> Result<Option<(NodeSet, Vec<u8>)>> {
        let seg = self.decoder.decode_packet(packet, source)?;
        let key = seg.file.bits();
        let assembler = self
            .assemblers
            .entry(key)
            .or_insert_with(|| SegmentAssembler::new(seg.file));
        assembler.add(seg)?;
        if assembler.is_complete() {
            let assembler = self.assemblers.remove(&key).unwrap();
            let file = assembler.file();
            Ok(Some((file, assembler.assemble()?)))
        } else {
            Ok(None)
        }
    }

    /// Number of partially assembled intermediates still in flight.
    pub fn in_flight(&self) -> usize {
        self.assemblers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use crate::intermediate::MapOutputStore;
    use crate::placement::PlacementPlan;
    use bytes::Bytes;

    fn fs(nodes: &[usize]) -> NodeSet {
        nodes.iter().copied().collect()
    }

    /// Deterministic intermediate contents for (target, file).
    fn value_for(t: NodeId, file: NodeSet, len_scale: usize) -> Vec<u8> {
        let len = (t + 1) * len_scale + file.len();
        (0..len)
            .map(|i| (t * 89 + file.bits() as usize * 31 + i * 7) as u8)
            .collect()
    }

    /// Builds the keep-rule store for every node of a (k, r) deployment.
    fn stores(k: usize, r: usize, len_scale: usize) -> Vec<MapOutputStore> {
        let plan = PlacementPlan::new(k, r).unwrap();
        (0..k)
            .map(|node| {
                let mut store = MapOutputStore::new();
                for file_id in plan.files_of_node(node) {
                    let file = plan.nodes_of_file(file_id);
                    for t in 0..k {
                        if plan.keeps_intermediate(node, file, t) {
                            store.insert(t, file, Bytes::from(value_for(t, file, len_scale)));
                        }
                    }
                }
                store
            })
            .collect()
    }

    /// Full multicast exchange: every node encodes for all its groups, every
    /// other group member decodes, and the recovered values must equal the
    /// originals.
    fn roundtrip(k: usize, r: usize, len_scale: usize) {
        let stores = stores(k, r, len_scale);
        let mut pipelines: Vec<DecodePipeline> = (0..k)
            .map(|n| DecodePipeline::new(k, r, n).unwrap())
            .collect();
        let mut recovered: Vec<Vec<(NodeSet, Vec<u8>)>> = vec![Vec::new(); k];

        for sender in 0..k {
            let enc = Encoder::new(k, r, sender).unwrap();
            for pkt in enc.encode_all(&stores[sender]).unwrap() {
                // Wire roundtrip as the transport would do.
                let pkt = CodedPacket::from_bytes(&pkt.to_bytes()).unwrap();
                for receiver in pkt.group.iter().filter(|&n| n != sender) {
                    if let Some(done) = pipelines[receiver].accept(&pkt, &stores[receiver]).unwrap()
                    {
                        recovered[receiver].push(done);
                    }
                }
            }
        }

        let plan = PlacementPlan::new(k, r).unwrap();
        for node in 0..k {
            // Every node recovers exactly the intermediates of files it did
            // not map: C(K-1, r) of them.
            assert_eq!(
                recovered[node].len() as u64,
                pipelines[node].expected_total(),
                "node {node} at (k={k}, r={r})"
            );
            assert_eq!(pipelines[node].in_flight(), 0);
            for (file, data) in &recovered[node] {
                assert!(!file.contains(node));
                assert_eq!(file.len(), r);
                assert_eq!(
                    *data,
                    value_for(node, *file, len_scale),
                    "I^{node}_{file} (k={k}, r={r})"
                );
                // The file must exist in the placement.
                plan.file_of_nodes(*file).unwrap();
            }
        }
    }

    #[test]
    fn roundtrip_paper_fig7_setting() {
        roundtrip(3, 2, 4); // the Fig. 6/7 group {1,2,3}
    }

    #[test]
    fn roundtrip_k4_r2_fig4_setting() {
        roundtrip(4, 2, 10);
    }

    #[test]
    fn roundtrip_various_k_r() {
        for (k, r) in [(4, 1), (4, 3), (5, 2), (5, 4), (6, 3), (7, 2), (6, 5)] {
            roundtrip(k, r, 7);
        }
    }

    #[test]
    fn roundtrip_tiny_values_with_padding() {
        // len_scale 1 → values of 2..=k+1 bytes; splits produce zero-length
        // tail segments, exercising the padding paths.
        roundtrip(5, 3, 1);
        roundtrip(6, 4, 1);
    }

    #[test]
    fn decode_rejects_foreign_group() {
        let stores = stores(4, 2, 3);
        let dec = Decoder::new(4, 2, 3).unwrap();
        let enc = Encoder::new(4, 2, 0).unwrap();
        // Group {0,1,2} does not contain node 3.
        let pkt = enc.encode_group(fs(&[0, 1, 2]), &stores[0]).unwrap();
        let err = dec.decode_packet(&pkt, &stores[3]).unwrap_err();
        assert!(matches!(err, CodedError::PlanMismatch { .. }));
    }

    #[test]
    fn decode_rejects_own_packet() {
        let stores = stores(3, 2, 3);
        let enc = Encoder::new(3, 2, 0).unwrap();
        let dec = Decoder::new(3, 2, 0).unwrap();
        let pkt = enc.encode_group(fs(&[0, 1, 2]), &stores[0]).unwrap();
        assert!(dec.decode_packet(&pkt, &stores[0]).is_err());
    }

    #[test]
    fn decode_rejects_wrong_r() {
        let stores = stores(4, 2, 3);
        let enc = Encoder::new(4, 2, 0).unwrap();
        let pkt = enc.encode_group(fs(&[0, 1, 2]), &stores[0]).unwrap();
        // A decoder configured for r = 3 sees a group of the wrong size.
        let dec = Decoder::new(4, 3, 1).unwrap();
        let err = dec.decode_packet(&pkt, &stores[1]).unwrap_err();
        assert!(matches!(err, CodedError::PlanMismatch { .. }));
    }

    #[test]
    fn assembler_rejects_conflicting_duplicate() {
        let file = fs(&[1, 2]);
        let mut asm = SegmentAssembler::new(file);
        asm.add(DecodedSegment {
            file,
            sender: 1,
            position: 0,
            data: vec![1, 2],
        })
        .unwrap();
        // Same position, different bytes.
        let err = asm
            .add(DecodedSegment {
                file,
                sender: 1,
                position: 0,
                data: vec![9, 9],
            })
            .unwrap_err();
        assert!(err.to_string().contains("conflicting"));
    }

    #[test]
    fn assembler_accepts_benign_duplicate() {
        let file = fs(&[1, 2]);
        let mut asm = SegmentAssembler::new(file);
        let seg = DecodedSegment {
            file,
            sender: 1,
            position: 0,
            data: vec![1, 2],
        };
        asm.add(seg.clone()).unwrap();
        asm.add(seg).unwrap();
        assert!(!asm.is_complete());
    }

    #[test]
    fn assembler_incomplete_fails() {
        let asm = SegmentAssembler::new(fs(&[1, 2]));
        assert!(asm.assemble().is_err());
    }

    #[test]
    fn assembler_validates_split_rule() {
        let file = fs(&[1, 2]);
        let mut asm = SegmentAssembler::new(file);
        // Position 0 must be the longer piece; give it the shorter one.
        asm.add(DecodedSegment {
            file,
            sender: 1,
            position: 0,
            data: vec![1],
        })
        .unwrap();
        asm.add(DecodedSegment {
            file,
            sender: 2,
            position: 1,
            data: vec![2, 3],
        })
        .unwrap();
        let err = asm.assemble().unwrap_err();
        assert!(err.to_string().contains("split rule"));
    }
}
