//! Decoding of coded packets — paper §IV-E, Algorithm 2.
//!
//! On receipt of `E_{M,u}` from sender `u`, node `k` XORs out the segments
//! it already knows from its own Map stage,
//!
//! ```text
//! E_{M,u} ⊕ (⊕_{t ∈ M\{u,k}} I^t_{M\{t}, u})  =  I^k_{M\{k}, u}
//! ```
//!
//! recovering the `u`-indexed segment of the intermediate value `I^k_{M\{k}}`
//! it is missing (eq. (10)). Collecting one segment from each of the `r`
//! senders in the group and merging them in ascending sender position yields
//! the complete `I^k_{M\{k}}`.

use std::collections::{HashMap, HashSet};

use crate::error::{CodedError, Result};
use crate::field::FieldKind;
use crate::gf256;
use crate::groups::MulticastGroups;
use crate::intermediate::IntermediateSource;
use crate::packet::CodedPacket;
use crate::pool::{BufPool, BufPoolShard};
use crate::segment::{max_segment_len, segment_slice, segment_span};
use crate::solve::{mds_parts, mds_point, mds_row, GroupSolver};
use crate::subset::{NodeId, NodeSet};

/// When a receiver releases a multicast group's intermediate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DecodeMode {
    /// Barrier-on-all: wait for every one of the group's `r` packets and
    /// cancel-and-divide each (the paper's Algorithm 2). The default.
    #[default]
    All,
    /// Quorum: with MDS-mixed packets (GF(256)), release the group as
    /// soon as the per-group solver reaches full rank — any
    /// `s = r − 1` of the `r` packets suffice, so one straggling or dead
    /// sender per group is tolerated. Over GF(2) (no binary MDS code)
    /// the engine still polls instead of blocking per sender, but every
    /// packet is needed.
    Quorum,
}

impl DecodeMode {
    /// Both modes, for equivalence sweeps.
    pub const ALL: [DecodeMode; 2] = [DecodeMode::All, DecodeMode::Quorum];
}

impl std::fmt::Display for DecodeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DecodeMode::All => "all",
            DecodeMode::Quorum => "quorum",
        })
    }
}

impl std::str::FromStr for DecodeMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "all" => Ok(DecodeMode::All),
            "quorum" => Ok(DecodeMode::Quorum),
            other => Err(format!(
                "unknown decode mode `{other}` (expected all|quorum)"
            )),
        }
    }
}

/// A segment of a needed intermediate value recovered from one packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedSegment {
    /// The file label `F = M\{k}` the segment belongs to.
    pub file: NodeSet,
    /// The sender the segment is indexed by (`u` in eq. (10)).
    pub sender: NodeId,
    /// Zero-based position of this segment within the reassembled value
    /// (= position of `sender` within `F`).
    pub position: usize,
    /// The recovered bytes, already trimmed to the original length.
    pub data: Vec<u8>,
}

/// The attribution of a recovered segment whose bytes live in a
/// caller-provided buffer (see [`Decoder::decode_packet_into`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The file label `F = M\{k}` the segment belongs to.
    pub file: NodeSet,
    /// The sender the segment is indexed by (`u` in eq. (10)).
    pub sender: NodeId,
    /// Zero-based position of this segment within the reassembled value.
    pub position: usize,
}

/// Per-node decoder for the coded shuffle.
#[derive(Clone, Debug)]
pub struct Decoder {
    groups: MulticastGroups,
    node: NodeId,
    field: FieldKind,
}

impl Decoder {
    /// Decoder for `node` in a `(K, r)` deployment over GF(2) — the
    /// paper's XOR code and the byte-identical reference oracle.
    ///
    /// # Errors
    /// `InvalidParameters` if `(k, r)` is invalid or `node >= k`.
    pub fn new(k: usize, r: usize, node: NodeId) -> Result<Self> {
        Self::with_field(k, r, node, FieldKind::Gf2)
    }

    /// Decoder over an explicit coding field — must match the field the
    /// sender's [`Encoder`](crate::encode::Encoder) combined packets in
    /// (the rule is deterministic, so no coefficients travel on the wire).
    ///
    /// # Errors
    /// As [`new`](Decoder::new).
    pub fn with_field(k: usize, r: usize, node: NodeId, field: FieldKind) -> Result<Self> {
        let groups = MulticastGroups::new(k, r)?;
        if node >= k {
            return Err(CodedError::InvalidParameters {
                what: format!("node {node} out of range for K = {k}"),
            });
        }
        Ok(Decoder {
            groups,
            node,
            field,
        })
    }

    /// The node this decoder belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The coding field packets are cancelled in.
    pub fn field(&self) -> FieldKind {
        self.field
    }

    /// Recovers this node's segment from one received packet (eq. (10)).
    ///
    /// # Errors
    /// * `PlanMismatch` if the packet's group does not include this node, or
    ///   the group size disagrees with `r+1`, or this node is the sender;
    /// * `MalformedPacket` if the packet lacks a segment length for this
    ///   node or the payload is shorter than a known segment requires;
    /// * `MissingIntermediate` if a cancelling value is locally absent.
    pub fn decode_packet<S: IntermediateSource>(
        &self,
        packet: &CodedPacket,
        source: &S,
    ) -> Result<DecodedSegment> {
        let mut data = Vec::new();
        let info = self.decode_packet_into(packet, source, &mut data)?;
        Ok(DecodedSegment {
            file: info.file,
            sender: info.sender,
            position: info.position,
            data,
        })
    }

    /// Recovers this node's segment into a reusable accumulator — the
    /// allocation-free hot path of Algorithm 2. `acc` is cleared, filled
    /// with the recovered (already trimmed) bytes, and attributed by the
    /// returned [`SegmentInfo`]; a warm `acc` (e.g. from a
    /// [`BufPool`]) makes this heap-allocation-free.
    ///
    /// # Errors
    /// Identical to [`decode_packet`](Decoder::decode_packet).
    pub fn decode_packet_into<S: IntermediateSource>(
        &self,
        packet: &CodedPacket,
        source: &S,
        acc: &mut Vec<u8>,
    ) -> Result<SegmentInfo> {
        let m = packet.group;
        if m.len() != self.groups.group_size() {
            return Err(CodedError::PlanMismatch {
                what: format!(
                    "packet group {m} has {} members, expected {}",
                    m.len(),
                    self.groups.group_size()
                ),
            });
        }
        if !m.contains(self.node) || packet.sender == self.node {
            return Err(CodedError::PlanMismatch {
                what: format!(
                    "packet for group {m} from {} not decodable at node {}",
                    packet.sender, self.node
                ),
            });
        }
        let my_len = packet
            .seg_len_for(self.node)
            .ok_or_else(|| CodedError::MalformedPacket {
                what: format!("no segment length for receiver {}", self.node),
            })? as usize;
        if my_len > packet.payload.len() {
            return Err(CodedError::MalformedPacket {
                what: format!(
                    "declared segment length {my_len} exceeds payload {}",
                    packet.payload.len()
                ),
            });
        }

        // Cancel the locally known segments: t ∈ M \ {u, k}. In
        // characteristic 2 subtraction is XOR, so cancellation re-applies
        // the sender's own `coeff(u, t) ⊙ segment` terms.
        acc.clear();
        acc.extend_from_slice(&packet.payload);
        for t in m.iter().filter(|&t| t != packet.sender && t != self.node) {
            let file = m.without(t);
            let data = source
                .intermediate(t, file)
                .ok_or(CodedError::MissingIntermediate { target: t, file })?;
            let seg = segment_slice(data, file, packet.sender);
            if seg.len() > acc.len() {
                return Err(CodedError::MalformedPacket {
                    what: format!(
                        "payload {} bytes cannot contain known segment of {}",
                        acc.len(),
                        seg.len()
                    ),
                });
            }
            self.field
                .add_scaled(acc, seg, self.field.coeff(packet.sender, t));
        }

        let file = m.without(self.node);
        acc.truncate(my_len);
        // What remains is coeff(u, node) ⊙ I^node_{file, u}: divide by our
        // own coefficient (a GF(2) no-op — the coefficient is 1).
        let own = self.field.coeff(packet.sender, self.node);
        self.field.scale(acc, self.field.inv(own));
        let position = file
            .position_of(packet.sender)
            .expect("sender is in M\\{node} by construction");
        Ok(SegmentInfo {
            file,
            sender: packet.sender,
            position,
        })
    }

    /// Group enumeration shared with the encoder.
    pub fn groups(&self) -> &MulticastGroups {
        &self.groups
    }
}

/// Reassembles the `r` decoded segments of one intermediate value
/// `I^k_{F}` (paper: "merge them back").
#[derive(Clone, Debug)]
pub struct SegmentAssembler {
    file: NodeSet,
    pieces: Vec<Option<Vec<u8>>>,
    received: usize,
}

impl SegmentAssembler {
    /// Assembler for the intermediate of file `F` (`|F| = r` pieces).
    pub fn new(file: NodeSet) -> Self {
        let r = file.len();
        SegmentAssembler {
            file,
            pieces: vec![None; r],
            received: 0,
        }
    }

    /// The file being reassembled.
    pub fn file(&self) -> NodeSet {
        self.file
    }

    /// Adds one decoded segment.
    ///
    /// # Errors
    /// `MalformedPacket` if the segment's file disagrees, the position is out
    /// of range, or the slot is already filled with different data.
    pub fn add(&mut self, seg: DecodedSegment) -> Result<()> {
        let info = SegmentInfo {
            file: seg.file,
            sender: seg.sender,
            position: seg.position,
        };
        self.add_owned(info, seg.data).map(drop)
    }

    /// Adds an attributed, already-decoded buffer (the pooled form of
    /// [`add`](SegmentAssembler::add)). A benign duplicate hands the
    /// buffer back so the caller can recycle it.
    ///
    /// # Errors
    /// As [`add`](SegmentAssembler::add).
    pub fn add_owned(&mut self, info: SegmentInfo, buf: Vec<u8>) -> Result<Option<Vec<u8>>> {
        if info.file != self.file {
            return Err(CodedError::MalformedPacket {
                what: format!(
                    "segment for {} fed to assembler for {}",
                    info.file, self.file
                ),
            });
        }
        if info.position >= self.pieces.len() {
            return Err(CodedError::MalformedPacket {
                what: format!("segment position {} out of range", info.position),
            });
        }
        match &self.pieces[info.position] {
            Some(existing) if *existing != buf => Err(CodedError::MalformedPacket {
                what: format!(
                    "conflicting duplicate segment at position {}",
                    info.position
                ),
            }),
            Some(_) => Ok(Some(buf)), // benign duplicate
            None => {
                self.pieces[info.position] = Some(buf);
                self.received += 1;
                Ok(None)
            }
        }
    }

    /// True once all `r` segments are present.
    pub fn is_complete(&self) -> bool {
        self.received == self.pieces.len()
    }

    /// Sum of the collected piece lengths so far.
    pub fn total_len(&self) -> usize {
        self.pieces.iter().flatten().map(Vec::len).sum()
    }

    /// Concatenates the segments into the full intermediate value, verifying
    /// that each piece has the length the deterministic split implies.
    ///
    /// # Errors
    /// `MalformedPacket` if incomplete or if piece lengths are inconsistent
    /// with the split rule of eq. (7).
    pub fn assemble(mut self) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.total_len());
        let discard = BufPool::new();
        self.assemble_into(&mut out, &discard)?;
        Ok(out)
    }

    /// Merge-in-place form of [`assemble`](SegmentAssembler::assemble):
    /// appends the value to `out` and returns every drained piece buffer to
    /// `recycle`.
    ///
    /// # Errors
    /// As [`assemble`](SegmentAssembler::assemble); on error the pieces
    /// validated so far are already recycled.
    pub fn assemble_into(&mut self, out: &mut Vec<u8>, recycle: &BufPool) -> Result<()> {
        if !self.is_complete() {
            return Err(CodedError::MalformedPacket {
                what: format!(
                    "assembling {} with only {}/{} segments",
                    self.file,
                    self.received,
                    self.pieces.len()
                ),
            });
        }
        let parts = self.pieces.len();
        let total = self.total_len();
        out.reserve(total);
        let mut error = None;
        for (i, piece) in self.pieces.iter_mut().enumerate() {
            let piece = piece.take().expect("complete");
            let expected = segment_span(total, parts, i).len;
            if piece.len() != expected && error.is_none() {
                error = Some(CodedError::MalformedPacket {
                    what: format!(
                        "segment {i} has {} bytes, split rule implies {expected}",
                        piece.len()
                    ),
                });
            }
            out.extend_from_slice(&piece);
            recycle.put(piece);
        }
        self.received = 0;
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Drives decoding across all groups of a node: feeds packets in any order,
/// emits completed intermediate values `(file, bytes)` as they finish.
///
/// This is the receive-side state machine of the Multicast Shuffling stage:
/// a node expects `r` packets per group for each of its `C(K-1, r)` groups
/// and finishes with `C(K-1, r)` recovered intermediates — exactly the
/// `{I^k_S : k ∉ S}` set of paper §IV-E.
///
/// Segment accumulators are drawn from an internal [`BufPool`] and merged
/// in place into each completed value, so a warm pipeline's per-packet work
/// allocates only when an intermediate completes (the returned value is
/// owned by the caller).
#[derive(Debug)]
pub struct DecodePipeline {
    decoder: Decoder,
    mode: DecodeMode,
    slots: HashMap<u64, SegmentAssembler>,
    /// Per-group MDS solvers, keyed by `file.bits()` — only populated in
    /// [`DecodeMode::Quorum`] when MDS-mixed (wire v2) packets arrive.
    quorum_slots: HashMap<u64, QuorumSlot>,
    /// Groups already released by an early quorum: late packets for these
    /// are benign and ignored.
    released: HashSet<u64>,
    pool: BufPool,
}

/// In-flight MDS decode state for one group.
#[derive(Debug)]
struct QuorumSlot {
    solver: GroupSolver,
    /// Reconstruction length of the intermediate this node is missing,
    /// as declared by the first packet (cross-checked on later ones).
    total: usize,
}

impl DecodePipeline {
    /// Pipeline for `node` in a `(K, r)` deployment over GF(2).
    pub fn new(k: usize, r: usize, node: NodeId) -> Result<Self> {
        Self::with_field(k, r, node, FieldKind::Gf2)
    }

    /// Pipeline over an explicit coding field (see
    /// [`Decoder::with_field`]).
    ///
    /// # Errors
    /// As [`new`](DecodePipeline::new).
    pub fn with_field(k: usize, r: usize, node: NodeId, field: FieldKind) -> Result<Self> {
        Ok(DecodePipeline {
            decoder: Decoder::with_field(k, r, node, field)?,
            mode: DecodeMode::All,
            slots: HashMap::new(),
            quorum_slots: HashMap::new(),
            released: HashSet::new(),
            pool: BufPool::new(),
        })
    }

    /// Selects the release policy (builder form). Quorum mode is what
    /// enables [`accept`](DecodePipeline::accept) to process MDS-mixed
    /// (wire v2) packets through the [`GroupSolver`].
    pub fn with_decode(mut self, mode: DecodeMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured release policy.
    pub fn mode(&self) -> DecodeMode {
        self.mode
    }

    /// Number of intermediates this node must recover in total.
    pub fn expected_total(&self) -> u64 {
        self.decoder.groups.groups_per_node()
    }

    /// Processes one received packet; returns the completed `(file, value)`
    /// if this packet was the one that completed its group — the `r`-th
    /// classic packet, or (quorum mode) the one whose equation brought the
    /// group's MDS system to full rank.
    pub fn accept<S: IntermediateSource>(
        &mut self,
        packet: &CodedPacket,
        source: &S,
    ) -> Result<Option<(NodeSet, Vec<u8>)>> {
        if packet.mds {
            if self.mode != DecodeMode::Quorum {
                return Err(CodedError::PlanMismatch {
                    what: "MDS-mixed packet received but pipeline is in all-barrier mode"
                        .to_string(),
                });
            }
            return self.accept_mds(packet, source);
        }
        let mut acc = self.pool.get();
        let info = match self.decoder.decode_packet_into(packet, source, &mut acc) {
            Ok(info) => info,
            Err(e) => {
                self.pool.put(acc);
                return Err(e);
            }
        };
        self.add_segment_buf(info, acc)
    }

    /// Feeds an already-decoded segment (e.g. produced by a parallel
    /// [`Decoder::decode_packet`] fan-out) into the assembly state,
    /// returning the completed `(file, value)` if it was the last one of
    /// its group. The segment's buffer is absorbed into the pipeline's
    /// pool.
    pub fn accept_segment(&mut self, seg: DecodedSegment) -> Result<Option<(NodeSet, Vec<u8>)>> {
        let info = SegmentInfo {
            file: seg.file,
            sender: seg.sender,
            position: seg.position,
        };
        self.add_segment_buf(info, seg.data)
    }

    fn add_segment_buf(
        &mut self,
        info: SegmentInfo,
        buf: Vec<u8>,
    ) -> Result<Option<(NodeSet, Vec<u8>)>> {
        let key = info.file.bits();
        let assembler = self
            .slots
            .entry(key)
            .or_insert_with(|| SegmentAssembler::new(info.file));
        if let Some(duplicate) = assembler.add_owned(info, buf)? {
            self.pool.put(duplicate);
            return Ok(None);
        }
        if !assembler.is_complete() {
            return Ok(None);
        }
        // Complete: merge the pooled pieces in place into the output value
        // (the assembler validates each length against the split rule and
        // recycles the piece buffers into our pool).
        let mut assembler = self.slots.remove(&key).expect("slot just inserted");
        let mut out = Vec::with_capacity(assembler.total_len());
        assembler.assemble_into(&mut out, &self.pool)?;
        Ok(Some((info.file, out)))
    }

    /// Quorum path for MDS-mixed (wire v2) packets: cancel the known
    /// senders' mixes exactly as in Algorithm 2, then feed the residual —
    /// `c(u,k) ⊙ Σ_j v_u^j ⊙ part_j(I^k_{M\{k}})` — into the group's
    /// [`GroupSolver`] as one linear equation in the `s` unknown parts.
    /// The group releases the moment any `s` independent equations have
    /// arrived; packets from the slowest sender are never waited for, and
    /// late arrivals after release are ignored.
    fn accept_mds<S: IntermediateSource>(
        &mut self,
        packet: &CodedPacket,
        source: &S,
    ) -> Result<Option<(NodeSet, Vec<u8>)>> {
        let field = self.decoder.field();
        let node = self.decoder.node();
        if !field.supports_quorum() {
            return Err(CodedError::PlanMismatch {
                what: format!("MDS-mixed packet received but field {field} has no MDS code"),
            });
        }
        let m = packet.group;
        if m.len() != self.decoder.groups().group_size() {
            return Err(CodedError::PlanMismatch {
                what: format!(
                    "packet group {m} has {} members, expected {}",
                    m.len(),
                    self.decoder.groups().group_size()
                ),
            });
        }
        if !m.contains(node) || packet.sender == node {
            return Err(CodedError::PlanMismatch {
                what: format!(
                    "packet for group {m} from {} not decodable at node {node}",
                    packet.sender
                ),
            });
        }
        let my_total = packet
            .seg_len_for(node)
            .ok_or_else(|| CodedError::MalformedPacket {
                what: format!("no reconstruction length for receiver {node}"),
            })? as usize;
        let file = m.without(node);
        let key = file.bits();
        if self.released.contains(&key) {
            return Ok(None); // group already met quorum: late packet
        }
        let s = mds_parts(m.len());
        let l0 = max_segment_len(my_total, s);
        if l0 > packet.payload.len() {
            return Err(CodedError::MalformedPacket {
                what: format!(
                    "payload {} bytes shorter than part length {l0}",
                    packet.payload.len()
                ),
            });
        }

        // Cancel t ∈ M \ {u, k} by re-applying the sender's MDS mix of the
        // locally held intermediates (characteristic 2: add = subtract).
        let mut acc = self.pool.get();
        if let Err(e) = Self::cancel_mds(field, packet, node, source, s, &mut acc) {
            self.pool.put(acc);
            return Err(e);
        }
        acc.truncate(l0);
        let row = mds_row(field, packet.sender, node, s);
        let slot = self.quorum_slots.entry(key).or_insert_with(|| QuorumSlot {
            solver: GroupSolver::new(s, l0),
            total: my_total,
        });
        if slot.total != my_total {
            self.pool.put(acc);
            return Err(CodedError::MalformedPacket {
                what: format!(
                    "packet declares reconstruction length {my_total}, earlier packets said {}",
                    slot.total
                ),
            });
        }
        let added = slot.solver.add_equation(&row, &acc);
        self.pool.put(acc);
        added?;
        if !slot.solver.is_complete() {
            return Ok(None);
        }
        let slot = self.quorum_slots.remove(&key).expect("slot just touched");
        let parts = slot.solver.solve()?;
        let mut out = Vec::with_capacity(my_total);
        for (j, part) in parts.iter().enumerate() {
            let len = segment_span(my_total, s, j).len;
            out.extend_from_slice(&part[..len]);
        }
        self.released.insert(key);
        Ok(Some((file, out)))
    }

    /// Copies the payload into `acc` and cancels every locally known
    /// sender-mix term, leaving only the receiver's unknown combination.
    fn cancel_mds<S: IntermediateSource>(
        field: FieldKind,
        packet: &CodedPacket,
        node: NodeId,
        source: &S,
        s: usize,
        acc: &mut Vec<u8>,
    ) -> Result<()> {
        acc.clear();
        acc.extend_from_slice(&packet.payload);
        let v = mds_point(packet.sender);
        for t in packet
            .group
            .iter()
            .filter(|&t| t != packet.sender && t != node)
        {
            let file = packet.group.without(t);
            let data = source
                .intermediate(t, file)
                .ok_or(CodedError::MissingIntermediate { target: t, file })?;
            let declared = packet.seg_len_for(t).unwrap_or(u32::MAX) as usize;
            if declared != data.len() {
                return Err(CodedError::MalformedPacket {
                    what: format!(
                        "packet declares {declared} bytes for target {t}, local copy has {}",
                        data.len()
                    ),
                });
            }
            let mut w = field.coeff(packet.sender, t);
            for j in 0..s {
                let span = segment_span(data.len(), s, j);
                let seg = &data[span.offset..span.offset + span.len];
                if seg.len() > acc.len() {
                    return Err(CodedError::MalformedPacket {
                        what: format!(
                            "payload {} bytes cannot contain known part of {}",
                            acc.len(),
                            seg.len()
                        ),
                    });
                }
                gf256::add_scaled_slice(acc, seg, w);
                w = gf256::mul(w, v);
            }
        }
        Ok(())
    }

    /// Number of partially assembled intermediates still in flight.
    pub fn in_flight(&self) -> usize {
        self.slots.len() + self.quorum_slots.len()
    }

    /// The pipeline's internal buffer pool (exposed for reuse diagnostics
    /// and so parallel decode fan-outs can draw accumulators from it).
    pub fn buf_pool(&self) -> &BufPool {
        &self.pool
    }

    /// Checks out up to `n` segment accumulators as a per-worker
    /// [`BufPoolShard`]: the parallel decode fan-out takes one shard per
    /// worker per wave, so its per-packet path never contends on the
    /// pool's lock and — once the pool is warm from completed groups —
    /// never allocates. Buffers fed back through
    /// [`accept_segment`](DecodePipeline::accept_segment) return to the
    /// same pool at group completion, closing the loop.
    pub fn segment_shard(&self, n: usize) -> BufPoolShard<'_> {
        self.pool.checkout(n)
    }

    /// The pipeline's decoder — lets callers fan
    /// [`Decoder::decode_packet_into`] out over worker threads without
    /// re-enumerating the `C(K-1, r)` multicast groups a fresh
    /// [`Decoder::new`] would build.
    pub fn decoder(&self) -> &Decoder {
        &self.decoder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use crate::intermediate::MapOutputStore;
    use crate::placement::PlacementPlan;
    use bytes::Bytes;

    fn fs(nodes: &[usize]) -> NodeSet {
        nodes.iter().copied().collect()
    }

    /// Deterministic intermediate contents for (target, file).
    fn value_for(t: NodeId, file: NodeSet, len_scale: usize) -> Vec<u8> {
        let len = (t + 1) * len_scale + file.len();
        (0..len)
            .map(|i| (t * 89 + file.bits() as usize * 31 + i * 7) as u8)
            .collect()
    }

    /// Builds the keep-rule store for every node of a (k, r) deployment.
    fn stores(k: usize, r: usize, len_scale: usize) -> Vec<MapOutputStore> {
        let plan = PlacementPlan::new(k, r).unwrap();
        (0..k)
            .map(|node| {
                let mut store = MapOutputStore::new();
                for file_id in plan.files_of_node(node) {
                    let file = plan.nodes_of_file(file_id);
                    for t in 0..k {
                        if plan.keeps_intermediate(node, file, t) {
                            store.insert(t, file, Bytes::from(value_for(t, file, len_scale)));
                        }
                    }
                }
                store
            })
            .collect()
    }

    /// Full multicast exchange: every node encodes for all its groups, every
    /// other group member decodes, and the recovered values must equal the
    /// originals.
    fn roundtrip(k: usize, r: usize, len_scale: usize) {
        for field in FieldKind::ALL {
            roundtrip_in(k, r, len_scale, field);
        }
    }

    fn roundtrip_in(k: usize, r: usize, len_scale: usize, field: FieldKind) {
        let stores = stores(k, r, len_scale);
        let mut pipelines: Vec<DecodePipeline> = (0..k)
            .map(|n| DecodePipeline::with_field(k, r, n, field).unwrap())
            .collect();
        let mut recovered: Vec<Vec<(NodeSet, Vec<u8>)>> = vec![Vec::new(); k];

        for sender in 0..k {
            let enc = Encoder::with_field(k, r, sender, field).unwrap();
            for pkt in enc.encode_all(&stores[sender]).unwrap() {
                // Wire roundtrip as the transport would do.
                let pkt = CodedPacket::from_bytes(&pkt.to_bytes()).unwrap();
                for receiver in pkt.group.iter().filter(|&n| n != sender) {
                    if let Some(done) = pipelines[receiver].accept(&pkt, &stores[receiver]).unwrap()
                    {
                        recovered[receiver].push(done);
                    }
                }
            }
        }

        let plan = PlacementPlan::new(k, r).unwrap();
        for node in 0..k {
            // Every node recovers exactly the intermediates of files it did
            // not map: C(K-1, r) of them.
            assert_eq!(
                recovered[node].len() as u64,
                pipelines[node].expected_total(),
                "node {node} at (k={k}, r={r})"
            );
            assert_eq!(pipelines[node].in_flight(), 0);
            for (file, data) in &recovered[node] {
                assert!(!file.contains(node));
                assert_eq!(file.len(), r);
                assert_eq!(
                    *data,
                    value_for(node, *file, len_scale),
                    "I^{node}_{file} (k={k}, r={r})"
                );
                // The file must exist in the placement.
                plan.file_of_nodes(*file).unwrap();
            }
        }
    }

    #[test]
    fn roundtrip_paper_fig7_setting() {
        roundtrip(3, 2, 4); // the Fig. 6/7 group {1,2,3}
    }

    #[test]
    fn roundtrip_k4_r2_fig4_setting() {
        roundtrip(4, 2, 10);
    }

    #[test]
    fn roundtrip_various_k_r() {
        for (k, r) in [(4, 1), (4, 3), (5, 2), (5, 4), (6, 3), (7, 2), (6, 5)] {
            roundtrip(k, r, 7);
        }
    }

    #[test]
    fn roundtrip_tiny_values_with_padding() {
        // len_scale 1 → values of 2..=k+1 bytes; splits produce zero-length
        // tail segments, exercising the padding paths.
        roundtrip(5, 3, 1);
        roundtrip(6, 4, 1);
    }

    #[test]
    fn gf256_wire_bytes_differ_from_gf2_but_recover_the_same_values() {
        // The q-ary code must actually change the coded payloads (its
        // coefficients are not all 1) while both fields reconstruct the
        // identical original intermediates — GF(2) is the oracle.
        let (k, r, len_scale) = (5, 2, 6);
        let stores = stores(k, r, len_scale);
        let gf2 = Encoder::new(k, r, 0).unwrap();
        let gf256 = Encoder::with_field(k, r, 0, FieldKind::Gf256).unwrap();
        let pkts2 = gf2.encode_all(&stores[0]).unwrap();
        let pkts256 = gf256.encode_all(&stores[0]).unwrap();
        assert_eq!(pkts2.len(), pkts256.len());
        let mut any_differ = false;
        for (a, b) in pkts2.iter().zip(&pkts256) {
            assert_eq!(a.group, b.group);
            assert_eq!(a.seg_lens, b.seg_lens, "headers are field-independent");
            any_differ |= a.payload != b.payload;
        }
        assert!(any_differ, "gf256 coefficients left every payload as XOR");
        // Decoding mismatched fields must NOT silently agree.
        roundtrip_in(k, r, len_scale, FieldKind::Gf256);
    }

    #[test]
    fn pipeline_recycles_segment_buffers() {
        let (k, r) = (5, 2);
        let stores = stores(k, r, 6);
        let mut pipeline = DecodePipeline::new(k, r, 0).unwrap();
        let mut done = 0u64;
        for sender in 1..k {
            let enc = Encoder::new(k, r, sender).unwrap();
            for pkt in enc.encode_all(&stores[sender]).unwrap() {
                if pkt.group.contains(0) && pipeline.accept(&pkt, &stores[0]).unwrap().is_some() {
                    done += 1;
                }
            }
        }
        assert_eq!(done, pipeline.expected_total());
        assert_eq!(pipeline.in_flight(), 0);
        // Each completed group returned its r buffers to the pool, and
        // later packets drew from it instead of allocating.
        assert!(
            pipeline.buf_pool().recycle_hits() > 0,
            "pooled accumulators were never reused"
        );
        // Every piece buffer came back: the pool holds exactly the fresh
        // allocations ever made.
        assert_eq!(
            pipeline.buf_pool().pooled() as u64,
            pipeline.buf_pool().recycle_misses()
        );
    }

    #[test]
    fn accept_segment_matches_accept() {
        let (k, r) = (4, 2);
        let stores = stores(k, r, 5);
        let dec = Decoder::new(k, r, 0).unwrap();
        let mut via_accept = DecodePipeline::new(k, r, 0).unwrap();
        let mut via_segments = DecodePipeline::new(k, r, 0).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for sender in 1..k {
            let enc = Encoder::new(k, r, sender).unwrap();
            for pkt in enc.encode_all(&stores[sender]).unwrap() {
                if !pkt.group.contains(0) {
                    continue;
                }
                if let Some(done) = via_accept.accept(&pkt, &stores[0]).unwrap() {
                    a.push(done);
                }
                let seg = dec.decode_packet(&pkt, &stores[0]).unwrap();
                if let Some(done) = via_segments.accept_segment(seg).unwrap() {
                    b.push(done);
                }
            }
        }
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, via_accept.expected_total());
    }

    #[test]
    fn decode_packet_into_reuses_accumulator() {
        let (k, r) = (4, 2);
        let stores = stores(k, r, 7);
        let dec = Decoder::new(k, r, 0).unwrap();
        let enc = Encoder::new(k, r, 1).unwrap();
        let mut acc = Vec::new();
        for pkt in enc.encode_all(&stores[1]).unwrap() {
            if !pkt.group.contains(0) {
                continue;
            }
            let reference = dec.decode_packet(&pkt, &stores[0]).unwrap();
            let info = dec.decode_packet_into(&pkt, &stores[0], &mut acc).unwrap();
            assert_eq!(info.file, reference.file);
            assert_eq!(info.sender, reference.sender);
            assert_eq!(info.position, reference.position);
            assert_eq!(acc, reference.data);
        }
    }

    #[test]
    fn decode_rejects_foreign_group() {
        let stores = stores(4, 2, 3);
        let dec = Decoder::new(4, 2, 3).unwrap();
        let enc = Encoder::new(4, 2, 0).unwrap();
        // Group {0,1,2} does not contain node 3.
        let pkt = enc.encode_group(fs(&[0, 1, 2]), &stores[0]).unwrap();
        let err = dec.decode_packet(&pkt, &stores[3]).unwrap_err();
        assert!(matches!(err, CodedError::PlanMismatch { .. }));
    }

    #[test]
    fn decode_rejects_own_packet() {
        let stores = stores(3, 2, 3);
        let enc = Encoder::new(3, 2, 0).unwrap();
        let dec = Decoder::new(3, 2, 0).unwrap();
        let pkt = enc.encode_group(fs(&[0, 1, 2]), &stores[0]).unwrap();
        assert!(dec.decode_packet(&pkt, &stores[0]).is_err());
    }

    #[test]
    fn decode_rejects_wrong_r() {
        let stores = stores(4, 2, 3);
        let enc = Encoder::new(4, 2, 0).unwrap();
        let pkt = enc.encode_group(fs(&[0, 1, 2]), &stores[0]).unwrap();
        // A decoder configured for r = 3 sees a group of the wrong size.
        let dec = Decoder::new(4, 3, 1).unwrap();
        let err = dec.decode_packet(&pkt, &stores[1]).unwrap_err();
        assert!(matches!(err, CodedError::PlanMismatch { .. }));
    }

    #[test]
    fn assembler_rejects_conflicting_duplicate() {
        let file = fs(&[1, 2]);
        let mut asm = SegmentAssembler::new(file);
        asm.add(DecodedSegment {
            file,
            sender: 1,
            position: 0,
            data: vec![1, 2],
        })
        .unwrap();
        // Same position, different bytes.
        let err = asm
            .add(DecodedSegment {
                file,
                sender: 1,
                position: 0,
                data: vec![9, 9],
            })
            .unwrap_err();
        assert!(err.to_string().contains("conflicting"));
    }

    #[test]
    fn assembler_accepts_benign_duplicate() {
        let file = fs(&[1, 2]);
        let mut asm = SegmentAssembler::new(file);
        let seg = DecodedSegment {
            file,
            sender: 1,
            position: 0,
            data: vec![1, 2],
        };
        asm.add(seg.clone()).unwrap();
        asm.add(seg).unwrap();
        assert!(!asm.is_complete());
    }

    #[test]
    fn assembler_incomplete_fails() {
        let asm = SegmentAssembler::new(fs(&[1, 2]));
        assert!(asm.assemble().is_err());
    }

    /// Encodes sender's MDS-mixed packet for group `m` and roundtrips it
    /// through the v2 wire format, as the engine's quorum path does.
    fn mds_packet(
        k: usize,
        r: usize,
        sender: usize,
        m: NodeSet,
        store: &MapOutputStore,
    ) -> CodedPacket {
        let enc = Encoder::with_field(k, r, sender, FieldKind::Gf256).unwrap();
        let mut scratch = crate::encode::EncodeScratch::new();
        enc.encode_group_mds_into(m, store, &mut scratch).unwrap();
        let mut wire = Vec::new();
        CodedPacket::write_wire_mds(m, sender, &scratch.seg_lens, &scratch.payload, &mut wire);
        CodedPacket::from_bytes(&wire).unwrap()
    }

    /// Full quorum exchange with `skip` senders suppressed per group: every
    /// node must still recover every missing intermediate byte-identically,
    /// as long as at least `s = r - 1` of the `r` packets arrive.
    fn quorum_roundtrip_skipping(k: usize, r: usize, len_scale: usize, skip: usize) {
        let stores = stores(k, r, len_scale);
        let groups = MulticastGroups::new(k, r).unwrap();
        let mut pipelines: Vec<DecodePipeline> = (0..k)
            .map(|n| {
                DecodePipeline::with_field(k, r, n, FieldKind::Gf256)
                    .unwrap()
                    .with_decode(DecodeMode::Quorum)
            })
            .collect();
        let mut recovered: Vec<Vec<(NodeSet, Vec<u8>)>> = vec![Vec::new(); k];

        for (gid, m) in groups.iter_groups() {
            // Deterministically suppress `skip` senders per group.
            let victims: Vec<usize> = m.iter().skip(gid.0 as usize % m.len()).take(skip).collect();
            for sender in m.iter().filter(|u| !victims.contains(u)) {
                let pkt = mds_packet(k, r, sender, m, &stores[sender]);
                for rx in m.iter().filter(|&n| n != sender) {
                    if let Some(done) = pipelines[rx].accept(&pkt, &stores[rx]).unwrap() {
                        recovered[rx].push(done);
                    }
                }
            }
        }

        for node in 0..k {
            assert_eq!(
                recovered[node].len() as u64,
                pipelines[node].expected_total(),
                "node {node} at (k={k}, r={r}, skip={skip})"
            );
            assert_eq!(pipelines[node].in_flight(), 0);
            for (file, data) in &recovered[node] {
                assert_eq!(
                    *data,
                    value_for(node, *file, len_scale),
                    "I^{node}_{file} (k={k}, r={r}, skip={skip})"
                );
            }
        }
    }

    #[test]
    fn quorum_roundtrip_on_full_receipt() {
        for (k, r) in [(4, 2), (5, 2), (5, 3), (6, 4)] {
            quorum_roundtrip_skipping(k, r, 7, 0);
        }
        quorum_roundtrip_skipping(5, 3, 1, 0); // zero-length tail parts
    }

    #[test]
    fn quorum_tolerates_one_missing_sender_per_group() {
        // r >= 3 so s = r - 1 >= 2: one of the r packets per group never
        // arrives, yet every group still reaches full rank.
        for (k, r) in [(4, 3), (5, 3), (5, 4), (6, 3)] {
            quorum_roundtrip_skipping(k, r, 6, 1);
        }
        quorum_roundtrip_skipping(5, 4, 1, 1);
    }

    #[test]
    fn quorum_late_packet_after_release_is_ignored() {
        let (k, r, len_scale) = (4, 3, 5);
        let stores = stores(k, r, len_scale);
        let m: NodeSet = fs(&[0, 1, 2, 3]);
        let mut pipe = DecodePipeline::with_field(k, r, 0, FieldKind::Gf256)
            .unwrap()
            .with_decode(DecodeMode::Quorum);
        // Senders 1 and 2 complete the quorum (s = 2); sender 3 is late.
        let p1 = mds_packet(k, r, 1, m, &stores[1]);
        let p2 = mds_packet(k, r, 2, m, &stores[2]);
        let p3 = mds_packet(k, r, 3, m, &stores[3]);
        assert!(pipe.accept(&p1, &stores[0]).unwrap().is_none());
        let (file, data) = pipe.accept(&p2, &stores[0]).unwrap().expect("quorum met");
        assert_eq!(file, m.without(0));
        assert_eq!(data, value_for(0, file, len_scale));
        // The straggler's packet arrives after release: benign no-op.
        assert!(pipe.accept(&p3, &stores[0]).unwrap().is_none());
        // And a duplicate of an already-used equation is benign too.
        assert!(pipe.accept(&p1, &stores[0]).unwrap().is_none());
        assert_eq!(pipe.in_flight(), 0);
    }

    #[test]
    fn mds_packet_rejected_in_all_mode() {
        let (k, r) = (4, 3);
        let stores = stores(k, r, 4);
        let pkt = mds_packet(k, r, 1, fs(&[0, 1, 2, 3]), &stores[1]);
        let mut pipe = DecodePipeline::with_field(k, r, 0, FieldKind::Gf256).unwrap();
        let err = pipe.accept(&pkt, &stores[0]).unwrap_err();
        assert!(matches!(err, CodedError::PlanMismatch { .. }));
    }

    #[test]
    fn gf2_quorum_pipeline_rejects_mds_packet() {
        let (k, r) = (4, 3);
        let stores = stores(k, r, 4);
        let pkt = mds_packet(k, r, 1, fs(&[0, 1, 2, 3]), &stores[1]);
        let mut pipe = DecodePipeline::new(k, r, 0)
            .unwrap()
            .with_decode(DecodeMode::Quorum);
        let err = pipe.accept(&pkt, &stores[0]).unwrap_err();
        assert!(matches!(err, CodedError::PlanMismatch { .. }));
    }

    #[test]
    fn decode_mode_parses_and_displays() {
        assert_eq!("all".parse::<DecodeMode>().unwrap(), DecodeMode::All);
        assert_eq!("quorum".parse::<DecodeMode>().unwrap(), DecodeMode::Quorum);
        assert!("both".parse::<DecodeMode>().is_err());
        assert_eq!(DecodeMode::All.to_string(), "all");
        assert_eq!(DecodeMode::Quorum.to_string(), "quorum");
        assert_eq!(DecodeMode::default(), DecodeMode::All);
    }

    #[test]
    fn assembler_validates_split_rule() {
        let file = fs(&[1, 2]);
        let mut asm = SegmentAssembler::new(file);
        // Position 0 must be the longer piece; give it the shorter one.
        asm.add(DecodedSegment {
            file,
            sender: 1,
            position: 0,
            data: vec![1],
        })
        .unwrap();
        asm.add(DecodedSegment {
            file,
            sender: 2,
            position: 1,
            data: vec![2, 3],
        })
        .unwrap();
        let err = asm.assemble().unwrap_err();
        assert!(err.to_string().contains("split rule"));
    }
}
