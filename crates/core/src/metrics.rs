//! Hand-rolled, lock-free runtime metrics: counters, gauges, and
//! log-linear histograms with p50/p99/max, plus a [`MetricsHub`] registry
//! that renders the whole inventory as Prometheus text exposition.
//!
//! The offline build rules out registry crates, so the plane is built
//! from `std::sync::atomic` only:
//!
//! * [`Counter`] — monotonically increasing `AtomicU64`;
//! * [`Gauge`] — signed instantaneous level (`AtomicI64`);
//! * [`Histogram`] — a fixed array of atomic buckets, log-linear with
//!   eight sub-buckets per power of two (≤ 6.25 % relative quantile
//!   error), plus exact `count`, `sum`, and `max`.
//!
//! Recording on any instrument is a handful of relaxed atomic RMWs —
//! no locks, no allocation — so instruments are safe to hit from the
//! engine's hot loops. The hub's mutex guards *registration only*:
//! callers register once, keep the returned `Arc` handle, and record
//! through it.
//!
//! ```
//! use cts_core::metrics::MetricsHub;
//!
//! let hub = MetricsHub::new();
//! let jobs = hub.counter("cts_jobs_submitted_total");
//! jobs.inc();
//! let lat = hub.histogram_scaled("cts_stage_seconds", 1e-9); // records ns
//! lat.record(1_500_000); // 1.5 ms
//! let text = hub.render_prometheus();
//! assert!(text.contains("cts_jobs_submitted_total 1"));
//! ```

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, slots in use, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the level outright.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Values `0..=15` get exact buckets; beyond that each power of two is
/// split into eight linear sub-buckets keyed by the three bits after the
/// leading one.
const LINEAR_CUTOFF: u64 = 16;
const SUB_BUCKETS: u32 = 8;
/// 16 exact + 8 per octave for exponents 4..=63.
const BUCKETS: usize = 16 + 60 * SUB_BUCKETS as usize;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= 4
    let sub = ((v >> (msb - 3)) & 0x7) as usize;
    16 + (msb as usize - 4) * SUB_BUCKETS as usize + sub
}

/// Upper edge of bucket `idx` — the value reported for quantiles landing
/// in that bucket (a ≤ 6.25 % overestimate in the log-linear range).
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    let oct = (idx - 16) / SUB_BUCKETS as usize;
    let sub = ((idx - 16) % SUB_BUCKETS as usize) as u64;
    let msb = (oct + 4) as u32;
    let lower = (1u64 << msb) | (sub << (msb - 3));
    lower + (1u64 << (msb - 3)) - 1
}

/// A lock-free log-linear histogram of `u64` samples.
///
/// ~4 KiB of atomic buckets per instrument; recording is three relaxed
/// RMWs plus a compare-exchange loop for the exact maximum.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wraps only after `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket upper edge); `None`
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        // Rank of the sample we want, 1-based, clamped into range.
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Never report beyond the exact max.
                return Some(bucket_upper(idx).min(self.max()));
            }
        }
        Some(self.max())
    }

    /// Median (approximate).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th percentile (approximate).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

/// How a histogram's raw `u64` samples map to the exposition unit
/// (e.g. `1e-9` for nanosecond samples rendered as seconds).
#[derive(Clone, Copy, Debug)]
struct Scale(f64);

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>, Scale),
}

struct Registration {
    name: String,
    /// Optional single `key="value"` Prometheus label pair.
    label: Option<(String, String)>,
    instrument: Instrument,
}

impl Registration {
    fn series(&self) -> String {
        match &self.label {
            None => self.name.clone(),
            Some((k, v)) => format!("{}{{{}=\"{}\"}}", self.name, k, v),
        }
    }

    fn series_with(&self, extra_key: &str, extra_val: &str) -> String {
        match &self.label {
            None => format!("{}{{{}=\"{}\"}}", self.name, extra_key, extra_val),
            Some((k, v)) => {
                format!(
                    "{}{{{}=\"{}\",{}=\"{}\"}}",
                    self.name, k, v, extra_key, extra_val
                )
            }
        }
    }
}

/// The process-wide metric registry.
///
/// Registration is idempotent: asking for the same `(name, label)` twice
/// returns the same instrument, so independent subsystems can share a
/// series without coordination. The internal mutex is touched only at
/// registration and render time — never on the record path.
#[derive(Default)]
pub struct MetricsHub {
    inner: Mutex<Vec<Registration>>,
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("MetricsHub")
            .field("series", &inner.len())
            .finish()
    }
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    fn lookup<T, F>(&self, name: &str, label: Option<(&str, &str)>, pick: F) -> Option<T>
    where
        F: Fn(&Instrument) -> Option<T>,
    {
        let inner = self.inner.lock().unwrap();
        inner
            .iter()
            .find(|r| {
                r.name == name && r.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str())) == label
            })
            .and_then(|r| pick(&r.instrument))
    }

    /// Registers (or fetches) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with_opt(name, None)
    }

    /// Registers (or fetches) a counter carrying one label pair.
    pub fn counter_with(&self, name: &str, key: &str, value: &str) -> Arc<Counter> {
        self.counter_with_opt(name, Some((key, value)))
    }

    fn counter_with_opt(&self, name: &str, label: Option<(&str, &str)>) -> Arc<Counter> {
        if let Some(c) = self.lookup(name, label, |i| match i {
            Instrument::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        }) {
            return c;
        }
        let c = Arc::new(Counter::new());
        self.inner.lock().unwrap().push(Registration {
            name: name.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            instrument: Instrument::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Registers (or fetches) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with_opt(name, None)
    }

    /// Registers (or fetches) a gauge carrying one label pair.
    pub fn gauge_with(&self, name: &str, key: &str, value: &str) -> Arc<Gauge> {
        self.gauge_with_opt(name, Some((key, value)))
    }

    fn gauge_with_opt(&self, name: &str, label: Option<(&str, &str)>) -> Arc<Gauge> {
        if let Some(g) = self.lookup(name, label, |i| match i {
            Instrument::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        }) {
            return g;
        }
        let g = Arc::new(Gauge::new());
        self.inner.lock().unwrap().push(Registration {
            name: name.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            instrument: Instrument::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Registers (or fetches) a histogram whose samples render 1:1.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_opt(name, None, 1.0)
    }

    /// Registers (or fetches) a histogram whose raw samples are scaled by
    /// `scale` at render time (e.g. `1e-9` for ns recorded, seconds shown).
    pub fn histogram_scaled(&self, name: &str, scale: f64) -> Arc<Histogram> {
        self.histogram_with_opt(name, None, scale)
    }

    /// Labeled variant of [`histogram_scaled`](MetricsHub::histogram_scaled).
    pub fn histogram_with(&self, name: &str, key: &str, value: &str, scale: f64) -> Arc<Histogram> {
        self.histogram_with_opt(name, Some((key, value)), scale)
    }

    fn histogram_with_opt(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        scale: f64,
    ) -> Arc<Histogram> {
        if let Some(h) = self.lookup(name, label, |i| match i {
            Instrument::Histogram(h, _) => Some(Arc::clone(h)),
            _ => None,
        }) {
            return h;
        }
        let h = Arc::new(Histogram::new());
        self.inner.lock().unwrap().push(Registration {
            name: name.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            instrument: Instrument::Histogram(Arc::clone(&h), Scale(scale)),
        });
        h
    }

    /// Renders every registered series as Prometheus text exposition.
    ///
    /// Counters and gauges emit one sample line each; histograms emit the
    /// summary form (`{quantile="0.5"|"0.99"}`, `_max`, `_sum`, `_count`)
    /// with sample values multiplied by the registered scale.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        let mut typed: Vec<&str> = Vec::new();
        for reg in inner.iter() {
            let kind = match &reg.instrument {
                Instrument::Counter(_) => "counter",
                Instrument::Gauge(_) => "gauge",
                Instrument::Histogram(..) => "summary",
            };
            if !typed.contains(&reg.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", reg.name, kind));
                typed.push(reg.name.as_str());
            }
            match &reg.instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!("{} {}\n", reg.series(), c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("{} {}\n", reg.series(), g.get()));
                }
                Instrument::Histogram(h, Scale(s)) => {
                    let scale = |v: u64| v as f64 * s;
                    let p50 = h.p50().unwrap_or(0);
                    let p99 = h.p99().unwrap_or(0);
                    out.push_str(&format!(
                        "{} {}\n",
                        reg.series_with("quantile", "0.5"),
                        scale(p50)
                    ));
                    out.push_str(&format!(
                        "{} {}\n",
                        reg.series_with("quantile", "0.99"),
                        scale(p99)
                    ));
                    let base = reg.series();
                    let (bare, labels) = match base.find('{') {
                        Some(i) => base.split_at(i),
                        None => (base.as_str(), ""),
                    };
                    out.push_str(&format!("{}_max{} {}\n", bare, labels, scale(h.max())));
                    out.push_str(&format!("{}_sum{} {}\n", bare, labels, scale(h.sum())));
                    out.push_str(&format!("{}_count{} {}\n", bare, labels, h.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 0u64;
        while v < 1 << 20 {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= last, "index regressed at {v}");
            last = idx;
            v = v * 2 + 1;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_upper_bounds_its_members() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, 1 << 40] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} < member {v}");
            // Log-linear guarantee: ≤ 1/8 relative width above the cutoff.
            if v >= LINEAR_CUTOFF {
                assert!(
                    (upper - v) as f64 <= v as f64 / 8.0 + 1.0,
                    "bucket too wide at {v}: upper {upper}"
                );
            }
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_quantiles_track_uniform_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert!(
            (450..=560).contains(&p50),
            "p50 {p50} off for uniform 1..=1000"
        );
        assert!(
            (980..=1000).contains(&p99),
            "p99 {p99} off for uniform 1..=1000"
        );
        // Quantiles never exceed the exact max.
        assert!(h.quantile(1.0).unwrap() <= h.max());
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        h.record(0);
        assert_eq!(h.p50(), Some(0));
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn hub_registration_is_idempotent() {
        let hub = MetricsHub::new();
        let a = hub.counter("x_total");
        let b = hub.counter("x_total");
        a.inc();
        assert_eq!(b.get(), 1);
        // Different label, different series.
        let c = hub.counter_with("x_total", "stage", "Map");
        c.add(5);
        assert_eq!(a.get(), 1);
        let d = hub.counter_with("x_total", "stage", "Map");
        assert_eq!(d.get(), 5);
    }

    #[test]
    fn prometheus_render_has_types_and_series() {
        let hub = MetricsHub::new();
        hub.counter("jobs_total").add(3);
        hub.gauge("depth").set(-2);
        let h = hub.histogram_with("stage_seconds", "stage", "Map", 1e-9);
        h.record(2_000_000_000); // 2 s in ns
        let text = hub.render_prometheus();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total 3"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth -2"));
        assert!(text.contains("# TYPE stage_seconds summary"));
        assert!(text.contains("stage_seconds{stage=\"Map\",quantile=\"0.99\"}"));
        assert!(text.contains("stage_seconds_count{stage=\"Map\"} 1"));
        // Scale applied: the 2e9 ns sample renders as ~2 seconds.
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("stage_seconds_sum"))
            .unwrap();
        let val: f64 = sum_line.split_whitespace().last().unwrap().parse().unwrap();
        assert!((val - 2.0).abs() < 1e-9, "sum {val} not scaled to seconds");
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let h = Arc::clone(&h);
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 10_000 + i);
                    c.inc();
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.max(), 39_999);
    }
}
