//! Compact node subsets.
//!
//! The Coded TeraSort construction is entirely combinatorial: files are
//! labelled by `r`-subsets of the `K` nodes (paper eq. (6)), multicast groups
//! are `(r+1)`-subsets, and the encode/decode rules index segments by node
//! position inside a subset. [`NodeSet`] is a 64-bit bitset representation of
//! such subsets, so `K ≤ 64` (the paper evaluates `K ∈ {16, 20}`).

use std::fmt;

/// Index of a worker node, `0..K` (the paper numbers nodes `1..=K`; we use
/// zero-based indices everywhere and only shift when printing paper-style
/// walkthroughs).
pub type NodeId = usize;

/// Maximum number of nodes supported by [`NodeSet`].
pub const MAX_NODES: usize = 64;

/// A set of node indices stored as a 64-bit mask.
///
/// `NodeSet` is `Copy`, ordered by its bit pattern (which coincides with
/// *colexicographic* order on equal-size sets — the order used to assign
/// [`FileId`](crate::placement::FileId)s), and iterates its members in
/// ascending order.
///
/// # Examples
///
/// ```
/// use cts_core::subset::NodeSet;
///
/// let s = NodeSet::from_iter([1usize, 2]);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(2));
/// let t = s.with(3).without(1);
/// assert_eq!(t.iter().collect::<Vec<_>>(), vec![2, 3]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// Creates a set from a raw bitmask.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        NodeSet(bits)
    }

    /// Returns the raw bitmask.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// The full set `{0, 1, …, k-1}`.
    ///
    /// # Panics
    /// Panics if `k > 64`.
    #[inline]
    pub fn full(k: usize) -> Self {
        assert!(k <= MAX_NODES, "NodeSet supports at most {MAX_NODES} nodes");
        if k == MAX_NODES {
            NodeSet(u64::MAX)
        } else {
            NodeSet((1u64 << k) - 1)
        }
    }

    /// The singleton set `{node}`.
    #[inline]
    pub fn singleton(node: NodeId) -> Self {
        assert!(node < MAX_NODES);
        NodeSet(1u64 << node)
    }

    /// Number of members.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set has no members.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, node: NodeId) -> bool {
        node < MAX_NODES && (self.0 >> node) & 1 == 1
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// True if every member of `self` is in `other`.
    #[inline]
    pub const fn is_subset_of(self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// `self ∪ {node}` (the paper's `S ∪ {k}`).
    #[inline]
    pub fn with(self, node: NodeId) -> NodeSet {
        self.union(NodeSet::singleton(node))
    }

    /// `self \ {node}` (the paper's `M \ {t}`).
    #[inline]
    pub fn without(self, node: NodeId) -> NodeSet {
        NodeSet(self.0 & !(1u64 << node))
    }

    /// Smallest member, if any.
    #[inline]
    pub fn min(self) -> Option<NodeId> {
        if self.is_empty() {
            None
        } else {
            Some(self.0.trailing_zeros() as NodeId)
        }
    }

    /// Largest member, if any.
    #[inline]
    pub fn max(self) -> Option<NodeId> {
        if self.is_empty() {
            None
        } else {
            Some(63 - self.0.leading_zeros() as NodeId)
        }
    }

    /// Zero-based position of `node` among the members in ascending order.
    ///
    /// This is the index used by the segment-splitting rule of paper eq. (7):
    /// segment `I^t_{F,k}` is the chunk at `F.position_of(k)`.
    ///
    /// Returns `None` if `node` is not a member.
    #[inline]
    pub fn position_of(self, node: NodeId) -> Option<usize> {
        if !self.contains(node) {
            return None;
        }
        let below = self.0 & ((1u64 << node) - 1);
        Some(below.count_ones() as usize)
    }

    /// The member at zero-based `position` in ascending order, if any.
    #[inline]
    pub fn nth(self, position: usize) -> Option<NodeId> {
        self.iter().nth(position)
    }

    /// Iterates members in ascending order.
    #[inline]
    pub fn iter(self) -> NodeSetIter {
        NodeSetIter(self.0)
    }

    /// Collects the members into a vector, ascending.
    pub fn to_vec(self) -> Vec<NodeId> {
        self.iter().collect()
    }

    /// Formats the set with one-based node numbers (`{1,2,3}`), matching the
    /// paper's figures.
    pub fn display_one_based(self) -> String {
        let inner: Vec<String> = self.iter().map(|n| (n + 1).to_string()).collect();
        format!("{{{}}}", inner.join(","))
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut bits = 0u64;
        for n in iter {
            assert!(n < MAX_NODES, "node id {n} out of range");
            bits |= 1u64 << n;
        }
        NodeSet(bits)
    }
}

impl<'a> FromIterator<&'a NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = &'a NodeId>>(iter: I) -> Self {
        iter.into_iter().copied().collect()
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Ascending iterator over the members of a [`NodeSet`].
#[derive(Clone)]
pub struct NodeSetIter(u64);

impl Iterator for NodeSetIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            let n = self.0.trailing_zeros() as NodeId;
            self.0 &= self.0 - 1;
            Some(n)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeSetIter {}

impl IntoIterator for NodeSet {
    type Item = NodeId;
    type IntoIter = NodeSetIter;

    fn into_iter(self) -> NodeSetIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_basics() {
        let e = NodeSet::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
        assert_eq!(e.iter().count(), 0);
    }

    #[test]
    fn full_set_has_k_members() {
        for k in 0..=64 {
            let f = NodeSet::full(k);
            assert_eq!(f.len(), k);
            for n in 0..k {
                assert!(f.contains(n));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn full_set_rejects_k_over_64() {
        let _ = NodeSet::full(65);
    }

    #[test]
    fn insert_and_remove() {
        let s = NodeSet::from_iter([0usize, 5, 63]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(63));
        let t = s.without(5);
        assert_eq!(t.to_vec(), vec![0, 63]);
        let u = t.with(1);
        assert_eq!(u.to_vec(), vec![0, 1, 63]);
    }

    #[test]
    fn union_intersection_difference() {
        let a = NodeSet::from_iter([0usize, 1, 2]);
        let b = NodeSet::from_iter([2usize, 3]);
        assert_eq!(a.union(b).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersection(b).to_vec(), vec![2]);
        assert_eq!(a.difference(b).to_vec(), vec![0, 1]);
        assert!(a.intersection(b).is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn position_of_counts_smaller_members() {
        // The paper's Fig. 6 example: within F = {1,2} (one-based {2,3}),
        // segment indices follow ascending node order.
        let f = NodeSet::from_iter([1usize, 2]);
        assert_eq!(f.position_of(1), Some(0));
        assert_eq!(f.position_of(2), Some(1));
        assert_eq!(f.position_of(0), None);
    }

    #[test]
    fn nth_inverts_position_of() {
        let s = NodeSet::from_iter([3usize, 17, 40, 63]);
        for (i, n) in s.iter().enumerate() {
            assert_eq!(s.position_of(n), Some(i));
            assert_eq!(s.nth(i), Some(n));
        }
        assert_eq!(s.nth(4), None);
    }

    #[test]
    fn iteration_is_ascending() {
        let s = NodeSet::from_iter([9usize, 2, 41, 0]);
        assert_eq!(s.to_vec(), vec![0, 2, 9, 41]);
        let (lo, hi) = s.iter().size_hint();
        assert_eq!((lo, hi), (4, Some(4)));
    }

    #[test]
    fn display_one_based_matches_paper_style() {
        let s = NodeSet::from_iter([0usize, 1, 2]);
        assert_eq!(s.display_one_based(), "{1,2,3}");
        assert_eq!(format!("{s}"), "{0,1,2}");
    }

    #[test]
    fn ordering_is_colex_for_equal_sizes() {
        // colex: {0,1} < {0,2} < {1,2} < {0,3} …
        let s01 = NodeSet::from_iter([0usize, 1]);
        let s02 = NodeSet::from_iter([0usize, 2]);
        let s12 = NodeSet::from_iter([1usize, 2]);
        let s03 = NodeSet::from_iter([0usize, 3]);
        assert!(s01 < s02 && s02 < s12 && s12 < s03);
    }
}
