//! GF(256) arithmetic and SIMD slice kernels for the q-ary coding plane.
//!
//! The field is `GF(2^8)` under the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`, the classic Reed–Solomon
//! modulus) with generator `α = 2`. Addition is XOR — which is why the
//! GF(2) coding path embeds unchanged — and multiplication goes through
//! compile-time log/exp tables.
//!
//! The coding hot loop needs exactly two slice operations:
//!
//! * [`add_scaled_slice`]: `dst[i] ^= c ⊗ src[i]` — the q-ary
//!   generalization of [`crate::xor::xor_into`] (encode accumulation and
//!   decode cancellation);
//! * [`mul_slice`]: `dst[i] = c ⊗ dst[i]` — the decoder's final scaling
//!   by the inverse coefficient.
//!
//! Both are implemented three ways and dispatched once per process:
//!
//! | kernel | technique | width |
//! |---|---|---|
//! | `scalar`  | log/exp table lookups per byte | 1 B/step |
//! | `avx2`    | PSHUFB 4-bit nibble tables (`_mm256_shuffle_epi8`) | 32 B/step |
//! | `neon`    | `vqtbl1q_u8` nibble tables | 16 B/step |
//!
//! The SIMD kernels precompute two 16-entry tables per coefficient —
//! `lo[n] = c ⊗ n` and `hi[n] = c ⊗ (n·16)` — so one product is two
//! in-register table lookups and an XOR: `c ⊗ b = lo[b & 15] ^ hi[b >> 4]`.
//! Selection happens at first use via runtime CPU-feature detection
//! ([`Gf256Kernel::active`]); setting `CTS_FORCE_SCALAR=1` before first
//! use pins the scalar kernel (the cross-checking arm in CI). All kernels
//! are allocation-free: per-coefficient tables live on the stack.

use std::sync::OnceLock;

/// Compile-time log/exp tables for `GF(2^8) / 0x11D`, generator 2.
///
/// `EXP` is doubled (510 live entries) so `mul` can index
/// `EXP[log a + log b]` without a `% 255`.
const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11D;
        }
        i += 1;
    }
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
/// `EXP[i] = α^i` for `i < 255`, repeated once so sums of two logs index
/// directly.
pub const EXP: [u8; 512] = TABLES.0;
/// `LOG[x] = log_α x` for nonzero `x` (`LOG[0]` is unused and zero).
pub const LOG: [u8; 256] = TABLES.1;

/// Field multiplication `a ⊗ b`.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse of a nonzero element.
///
/// # Panics
/// Panics on `inv(0)` — zero has no inverse; coefficient rules must only
/// ever produce nonzero scalars.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "gf256: zero has no multiplicative inverse");
    EXP[255 - LOG[a as usize] as usize]
}

/// The two 16-entry nibble product tables of one coefficient: a full
/// byte product is `lo[b & 15] ^ hi[b >> 4]` by distributivity over the
/// nibble split `b = (b & 15) ⊕ (b & 0xF0)`.
#[derive(Clone, Copy, Debug)]
pub struct NibbleTables {
    /// `lo[n] = c ⊗ n`.
    pub lo: [u8; 16],
    /// `hi[n] = c ⊗ (n << 4)`.
    pub hi: [u8; 16],
}

impl NibbleTables {
    /// Builds the tables for coefficient `c` (30 field products, stack
    /// only — the warm path allocates nothing).
    #[inline]
    pub fn for_coeff(c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 1..16u8 {
            lo[n as usize] = mul(c, n);
            hi[n as usize] = mul(c, n << 4);
        }
        NibbleTables { lo, hi }
    }

    /// One byte product via the tables.
    #[inline]
    fn mul_byte(&self, b: u8) -> u8 {
        self.lo[(b & 0x0F) as usize] ^ self.hi[(b >> 4) as usize]
    }
}

/// The available GF(256) slice-kernel implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gf256Kernel {
    /// Portable log/exp-table kernel, one byte per step.
    Scalar,
    /// x86-64 AVX2 PSHUFB nibble-table kernel, 32 bytes per step.
    Avx2,
    /// AArch64 NEON `vqtbl1q_u8` nibble-table kernel, 16 bytes per step.
    Neon,
}

impl Gf256Kernel {
    /// Every kernel variant, for benches and equivalence sweeps.
    pub const ALL: [Gf256Kernel; 3] = [Gf256Kernel::Scalar, Gf256Kernel::Avx2, Gf256Kernel::Neon];

    /// Whether this process's CPU can run the kernel.
    pub fn supported(self) -> bool {
        match self {
            Gf256Kernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Gf256Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            Gf256Kernel::Avx2 => false,
            #[cfg(target_arch = "aarch64")]
            Gf256Kernel::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(target_arch = "aarch64"))]
            Gf256Kernel::Neon => false,
        }
    }

    /// The kernel the hot path uses: detected once per process — the
    /// widest supported SIMD kernel, unless `CTS_FORCE_SCALAR=1` was set
    /// at first use (the CI arm that keeps the portable kernel green).
    pub fn active() -> Gf256Kernel {
        static ACTIVE: OnceLock<Gf256Kernel> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            if std::env::var_os("CTS_FORCE_SCALAR").is_some_and(|v| v == "1") {
                return Gf256Kernel::Scalar;
            }
            if Gf256Kernel::Avx2.supported() {
                Gf256Kernel::Avx2
            } else if Gf256Kernel::Neon.supported() {
                Gf256Kernel::Neon
            } else {
                Gf256Kernel::Scalar
            }
        })
    }
}

impl std::fmt::Display for Gf256Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Gf256Kernel::Scalar => "gf256-scalar",
            Gf256Kernel::Avx2 => "gf256-avx2",
            Gf256Kernel::Neon => "gf256-neon",
        })
    }
}

/// `dst[i] ^= c ⊗ src[i]` for `i < src.len()`, with the same
/// zero-padding convention as [`crate::xor::xor_into`]: a shorter `src`
/// leaves the accumulator tail untouched (padding zeros scale to zero).
///
/// # Panics
/// Panics if `src.len() > dst.len()`.
#[inline]
pub fn add_scaled_slice(dst: &mut [u8], src: &[u8], c: u8) {
    add_scaled_slice_with(Gf256Kernel::active(), dst, src, c);
}

/// `dst[i] = c ⊗ dst[i]` over the whole slice — the decoder's inverse
/// scaling.
#[inline]
pub fn mul_slice(dst: &mut [u8], c: u8) {
    mul_slice_with(Gf256Kernel::active(), dst, c);
}

/// [`add_scaled_slice`] with an explicit kernel — the benchmark and
/// equivalence-test entry point.
///
/// # Panics
/// Panics if `src.len() > dst.len()` or the kernel is unsupported on
/// this CPU.
pub fn add_scaled_slice_with(kernel: Gf256Kernel, dst: &mut [u8], src: &[u8], c: u8) {
    assert!(
        src.len() <= dst.len(),
        "add_scaled_slice: src ({}) longer than dst ({})",
        src.len(),
        dst.len()
    );
    if c == 0 {
        return; // 0 ⊗ x = 0: XOR-ing zeros is the identity.
    }
    let dst = &mut dst[..src.len()];
    match kernel {
        Gf256Kernel::Scalar => add_scaled_scalar(dst, src, c),
        Gf256Kernel::Avx2 => simd::add_scaled_avx2(dst, src, c),
        Gf256Kernel::Neon => simd::add_scaled_neon(dst, src, c),
    }
}

/// [`mul_slice`] with an explicit kernel.
///
/// # Panics
/// Panics if the kernel is unsupported on this CPU.
pub fn mul_slice_with(kernel: Gf256Kernel, dst: &mut [u8], c: u8) {
    if c == 1 {
        return; // 1 is the multiplicative identity.
    }
    match kernel {
        Gf256Kernel::Scalar => mul_slice_scalar(dst, c),
        Gf256Kernel::Avx2 => simd::mul_slice_avx2(dst, c),
        Gf256Kernel::Neon => simd::mul_slice_neon(dst, c),
    }
}

/// The portable log/exp kernel: `log c` hoisted out, one table walk per
/// nonzero source byte.
fn add_scaled_scalar(dst: &mut [u8], src: &[u8], c: u8) {
    let log_c = LOG[c as usize] as usize;
    for (d, &s) in dst.iter_mut().zip(src) {
        if s != 0 {
            *d ^= EXP[log_c + LOG[s as usize] as usize];
        }
    }
}

fn mul_slice_scalar(dst: &mut [u8], c: u8) {
    if c == 0 {
        dst.fill(0);
        return;
    }
    let log_c = LOG[c as usize] as usize;
    for d in dst.iter_mut() {
        if *d != 0 {
            *d = EXP[log_c + LOG[*d as usize] as usize];
        }
    }
}

/// The hand-written SIMD kernels. This module is the crate's single
/// `unsafe` surface: every intrinsic call is gated behind the matching
/// CPU-feature check in the public `_with` dispatchers ([`Gf256Kernel`]
/// panics on unsupported kernels before reaching them), loads/stores are
/// unaligned-safe variants, and the scalar tail reuses the same nibble
/// tables, so SIMD and scalar results are bit-identical.
#[allow(unsafe_code)]
mod simd {
    use super::NibbleTables;

    #[cfg(target_arch = "x86_64")]
    pub(super) fn add_scaled_avx2(dst: &mut [u8], src: &[u8], c: u8) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "gf256: avx2 kernel selected on a CPU without AVX2"
        );
        let t = NibbleTables::for_coeff(c);
        // SAFETY: AVX2 availability checked above; dst/src lengths are
        // equal (caller trims) and the loop stays in bounds.
        unsafe { add_scaled_avx2_impl(dst, src, &t) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn add_scaled_avx2_impl(dst: &mut [u8], src: &[u8], t: &NibbleTables) {
        use std::arch::x86_64::*;
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast()));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let len = dst.len();
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let mut i = 0usize;
        while i + 32 <= len {
            let sv = _mm256_loadu_si256(s.add(i).cast());
            let dv = _mm256_loadu_si256(d.add(i).cast());
            let lo_n = _mm256_and_si256(sv, mask);
            let hi_n = _mm256_and_si256(_mm256_srli_epi16(sv, 4), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_t, lo_n),
                _mm256_shuffle_epi8(hi_t, hi_n),
            );
            _mm256_storeu_si256(d.add(i).cast(), _mm256_xor_si256(dv, prod));
            i += 32;
        }
        for j in i..len {
            dst[j] ^= t.mul_byte(src[j]);
        }
    }

    #[cfg(target_arch = "x86_64")]
    pub(super) fn mul_slice_avx2(dst: &mut [u8], c: u8) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "gf256: avx2 kernel selected on a CPU without AVX2"
        );
        let t = NibbleTables::for_coeff(c);
        // SAFETY: AVX2 availability checked above; in-place over `dst`.
        unsafe { mul_slice_avx2_impl(dst, &t) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_slice_avx2_impl(dst: &mut [u8], t: &NibbleTables) {
        use std::arch::x86_64::*;
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast()));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let len = dst.len();
        let d = dst.as_mut_ptr();
        let mut i = 0usize;
        while i + 32 <= len {
            let dv = _mm256_loadu_si256(d.add(i).cast());
            let lo_n = _mm256_and_si256(dv, mask);
            let hi_n = _mm256_and_si256(_mm256_srli_epi16(dv, 4), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_t, lo_n),
                _mm256_shuffle_epi8(hi_t, hi_n),
            );
            _mm256_storeu_si256(d.add(i).cast(), prod);
            i += 32;
        }
        for b in dst[i..].iter_mut() {
            *b = t.mul_byte(*b);
        }
    }

    #[cfg(target_arch = "aarch64")]
    pub(super) fn add_scaled_neon(dst: &mut [u8], src: &[u8], c: u8) {
        assert!(
            std::arch::is_aarch64_feature_detected!("neon"),
            "gf256: neon kernel selected on a CPU without NEON"
        );
        let t = NibbleTables::for_coeff(c);
        // SAFETY: NEON availability checked above; bounds as in AVX2.
        unsafe { add_scaled_neon_impl(dst, src, &t) }
    }

    #[cfg(target_arch = "aarch64")]
    #[target_feature(enable = "neon")]
    unsafe fn add_scaled_neon_impl(dst: &mut [u8], src: &[u8], t: &NibbleTables) {
        use std::arch::aarch64::*;
        let lo_t = vld1q_u8(t.lo.as_ptr());
        let hi_t = vld1q_u8(t.hi.as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let len = dst.len();
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let mut i = 0usize;
        while i + 16 <= len {
            let sv = vld1q_u8(s.add(i));
            let dv = vld1q_u8(d.add(i));
            let prod = veorq_u8(
                vqtbl1q_u8(lo_t, vandq_u8(sv, mask)),
                vqtbl1q_u8(hi_t, vshrq_n_u8(sv, 4)),
            );
            vst1q_u8(d.add(i), veorq_u8(dv, prod));
            i += 16;
        }
        for j in i..len {
            dst[j] ^= t.mul_byte(src[j]);
        }
    }

    #[cfg(target_arch = "aarch64")]
    pub(super) fn mul_slice_neon(dst: &mut [u8], c: u8) {
        assert!(
            std::arch::is_aarch64_feature_detected!("neon"),
            "gf256: neon kernel selected on a CPU without NEON"
        );
        let t = NibbleTables::for_coeff(c);
        // SAFETY: NEON availability checked above; in-place over `dst`.
        unsafe { mul_slice_neon_impl(dst, &t) }
    }

    #[cfg(target_arch = "aarch64")]
    #[target_feature(enable = "neon")]
    unsafe fn mul_slice_neon_impl(dst: &mut [u8], t: &NibbleTables) {
        use std::arch::aarch64::*;
        let lo_t = vld1q_u8(t.lo.as_ptr());
        let hi_t = vld1q_u8(t.hi.as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let len = dst.len();
        let d = dst.as_mut_ptr();
        let mut i = 0usize;
        while i + 16 <= len {
            let dv = vld1q_u8(d.add(i));
            let prod = veorq_u8(
                vqtbl1q_u8(lo_t, vandq_u8(dv, mask)),
                vqtbl1q_u8(hi_t, vshrq_n_u8(dv, 4)),
            );
            vst1q_u8(d.add(i), prod);
            i += 16;
        }
        for b in dst[i..].iter_mut() {
            *b = t.mul_byte(*b);
        }
    }

    // Cross-compilation stubs: the dispatchers only reach a kernel after
    // `Gf256Kernel::supported()` filtering, so an off-architecture call is
    // a logic error, not a runtime fallback.
    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn add_scaled_avx2(_dst: &mut [u8], _src: &[u8], _c: u8) {
        unreachable!("gf256: avx2 kernel invoked on a non-x86-64 target");
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn mul_slice_avx2(_dst: &mut [u8], _c: u8) {
        unreachable!("gf256: avx2 kernel invoked on a non-x86-64 target");
    }

    #[cfg(not(target_arch = "aarch64"))]
    pub(super) fn add_scaled_neon(_dst: &mut [u8], _src: &[u8], _c: u8) {
        unreachable!("gf256: neon kernel invoked on a non-aarch64 target");
    }

    #[cfg(not(target_arch = "aarch64"))]
    pub(super) fn mul_slice_neon(_dst: &mut [u8], _c: u8) {
        unreachable!("gf256: neon kernel invoked on a non-aarch64 target");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference multiplication: carry-less shift-and-add mod 0x11D,
    /// independent of the tables it checks.
    fn mul_ref(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            let hi = a & 0x80 != 0;
            a <<= 1;
            if hi {
                a ^= 0x1D; // 0x11D mod x^8
            }
            b >>= 1;
        }
        p
    }

    #[test]
    fn tables_match_reference_mul_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_ref(a, b), "{a} ⊗ {b}");
            }
        }
    }

    #[test]
    fn exp_log_are_inverse_bijections() {
        for i in 0..255usize {
            assert_eq!(LOG[EXP[i] as usize] as usize, i);
        }
        let mut seen = [false; 256];
        for i in 0..255usize {
            assert!(!seen[EXP[i] as usize], "EXP repeats before order 255");
            seen[EXP[i] as usize] = true;
        }
        assert!(!seen[0], "0 is not a power of the generator");
    }

    #[test]
    fn inverses_over_all_nonzero_elements() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_zero_panics() {
        inv(0);
    }

    #[test]
    fn nibble_tables_reproduce_full_products() {
        for c in [0u8, 1, 2, 0x1D, 0x57, 0xFF] {
            let t = NibbleTables::for_coeff(c);
            for b in 0..=255u8 {
                assert_eq!(t.mul_byte(b), mul(c, b), "c={c} b={b}");
            }
        }
    }

    #[test]
    fn scalar_add_scaled_matches_bytewise_mul() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [1u8, 2, 0x53, 0xCA] {
            let mut dst = vec![0xA5u8; 256];
            add_scaled_slice_with(Gf256Kernel::Scalar, &mut dst, &src, c);
            for (i, &d) in dst.iter().enumerate() {
                assert_eq!(d, 0xA5 ^ mul(c, i as u8), "c={c} i={i}");
            }
        }
    }

    #[test]
    fn active_kernel_matches_scalar_on_unaligned_lengths() {
        let kernel = Gf256Kernel::active();
        for len in [0usize, 1, 7, 31, 32, 33, 63, 100, 4095, 4096, 4097] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let mut a: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let mut b = a.clone();
            add_scaled_slice_with(Gf256Kernel::Scalar, &mut a, &src, 0x8E);
            add_scaled_slice_with(kernel, &mut b, &src, 0x8E);
            assert_eq!(a, b, "add_scaled len {len} via {kernel}");
            mul_slice_with(Gf256Kernel::Scalar, &mut a, 0x3B);
            mul_slice_with(kernel, &mut b, 0x3B);
            assert_eq!(a, b, "mul_slice len {len} via {kernel}");
        }
    }

    #[test]
    fn add_scaled_by_zero_and_one_degenerate_correctly() {
        let src = vec![0x5Au8; 40];
        let mut dst = vec![0x0Fu8; 40];
        add_scaled_slice(&mut dst, &src, 0);
        assert!(dst.iter().all(|&b| b == 0x0F), "c=0 must be a no-op");
        add_scaled_slice(&mut dst, &src, 1);
        assert!(dst.iter().all(|&b| b == 0x0F ^ 0x5A), "c=1 must be XOR");
    }

    #[test]
    fn shorter_src_leaves_tail_untouched() {
        let mut dst = vec![1u8, 2, 3, 4, 5];
        add_scaled_slice(&mut dst, &[1, 1], 3);
        assert_eq!(&dst[2..], &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "add_scaled_slice")]
    fn rejects_longer_src() {
        add_scaled_slice(&mut [0u8; 2], &[0u8; 3], 1);
    }

    #[test]
    fn mul_slice_by_zero_clears() {
        let mut dst = vec![7u8; 50];
        mul_slice_with(Gf256Kernel::Scalar, &mut dst, 0);
        assert!(dst.iter().all(|&b| b == 0));
    }

    #[test]
    fn add_scaled_then_inverse_cancellation_roundtrips() {
        // The decode identity: acc = c ⊗ x; inv(c) ⊗ acc = x.
        let x: Vec<u8> = (0..300).map(|i| (i * 7 + 1) as u8).collect();
        for c in [2u8, 0x1D, 0xB7] {
            let mut acc = vec![0u8; x.len()];
            add_scaled_slice(&mut acc, &x, c);
            mul_slice(&mut acc, inv(c));
            assert_eq!(acc, x, "c = {c}");
        }
    }
}
