//! CodedTeraSort over real TCP sockets with the paper's coordinator
//! pattern (Fig. 8): rank 0 scatters the files, workers sort, rank 0
//! gathers the results — every byte crossing the kernel's TCP stack.
//!
//! Optionally rate-limits each node to the paper's 100 Mbps for a
//! real-time feel (tiny input, or it takes minutes by design):
//!
//! ```sh
//! cargo run --release --example tcp_cluster
//! CTS_RATE_LIMIT=1 cargo run --release --example tcp_cluster
//! ```

use coded_terasort::prelude::*;

fn main() {
    let k = 4;
    let r = 2;
    let records = 20_000;
    let rate_limited = std::env::var("CTS_RATE_LIMIT").is_ok();

    println!("Building a {k}-node TCP mesh on loopback…");
    let input = teragen::generate(records, 99);

    let mut job = SortJob {
        k,
        r,
        kernel: SortKernel::Comparison,
        partitioner: PartitionerKind::Range,
        engine: EngineConfig::tcp(k, r),
    };
    if rate_limited {
        println!("Rate-limiting every node's egress to 100 Mbps (tc-style)…");
        job.engine.cluster = job.engine.cluster.with_rate_limit(100e6 / 8.0);
        job.engine.strict_serial_shuffle = true;
    }

    let started = std::time::Instant::now();
    let run = run_coded_terasort(input.clone(), &job).expect("coded terasort over tcp");
    let elapsed = started.elapsed();
    run.validate().expect("TeraValidate");

    println!(
        "\nSorted {} records ({:.1} MB) over real TCP in {elapsed:.2?}. ✓",
        records,
        input.len() as f64 / 1e6
    );
    println!(
        "Shuffle bytes on the wire: {} across {} multicast packets",
        run.outcome.stats.shuffle_bytes(),
        run.outcome
            .trace
            .stage_transfer_count(cts_netsim::SHUFFLE_STAGE),
    );

    let w = run.outcome.wall.max;
    println!("\nWall-clock stages (slowest node):");
    println!(
        "  CodeGen {:>9.2?}   Map    {:>9.2?}   Encode {:>9.2?}",
        w.codegen, w.map, w.pack_encode
    );
    println!(
        "  Shuffle {:>9.2?}   Decode {:>9.2?}   Reduce {:>9.2?}",
        w.shuffle, w.unpack_decode, w.reduce
    );

    // Compare against the uncoded engine over the same fabric.
    let mut plain_job = SortJob {
        k,
        r: 1,
        kernel: SortKernel::Comparison,
        partitioner: PartitionerKind::Range,
        engine: EngineConfig::tcp(k, 1),
    };
    if rate_limited {
        plain_job.engine.cluster = plain_job.engine.cluster.with_rate_limit(100e6 / 8.0);
        plain_job.engine.strict_serial_shuffle = true;
    }
    let started = std::time::Instant::now();
    let plain = run_terasort(input, &plain_job).expect("terasort over tcp");
    let plain_elapsed = started.elapsed();
    plain.validate().expect("TeraValidate");
    assert_eq!(plain.outcome.outputs, run.outcome.outputs);

    println!("\nTeraSort on the same TCP fabric: {plain_elapsed:.2?}");
    println!(
        "Shuffle bytes: {} (coded saved {:.1}%)",
        plain.outcome.stats.shuffle_bytes(),
        100.0
            * (1.0
                - run.outcome.stats.shuffle_bytes() as f64
                    / plain.outcome.stats.shuffle_bytes() as f64)
    );
    if rate_limited {
        println!(
            "\nRate-limited wall-clock speedup: {:.2}×",
            plain_elapsed.as_secs_f64() / elapsed.as_secs_f64()
        );
    }
}
