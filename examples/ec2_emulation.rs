//! EC2-scale emulation: reproduce the paper's Table II (K = 16, 12 GB,
//! 100 Mbps) from a laptop-scale run plus the calibrated model.
//!
//! The real algorithms execute on scaled data over the in-memory fabric;
//! every transfer is traced; the calibrated EC2 model projects byte counts
//! onto 12 GB and prints the paper-style table next to the paper's own
//! numbers.
//!
//! ```sh
//! cargo run --release --example ec2_emulation
//! # knobs:
//! CTS_RECORDS=1200000 CTS_TARGET_GB=12 cargo run --release --example ec2_emulation
//! ```

use coded_terasort::bench::{paper_comparison, reference, Experiment};
use coded_terasort::prelude::*;

fn main() {
    let k = 16;
    let exp = Experiment::paper(k);
    println!(
        "Scaled run: {} records ({:.1} MB) projected onto {:.0} GB, K = {k}\n",
        exp.records,
        exp.input_bytes() as f64 / 1e6,
        exp.target_bytes as f64 / 1e9
    );

    let rows = paper_comparison(k, &[3, 5]);
    println!(
        "{}",
        render_table(
            "TABLE II — modeled at paper scale (this reproduction)",
            &rows
        )
    );

    println!("Side-by-side with the paper's measurements:\n");
    println!(
        "{}",
        reference::compare(
            "TeraSort (paper Table I/II vs model)",
            &reference::table2_terasort(),
            &rows[0].breakdown
        )
    );
    println!(
        "{}",
        reference::compare(
            "CodedTeraSort r = 3 (paper Table II vs model)",
            &reference::table2_coded_r3(),
            &rows[1].breakdown
        )
    );
    println!(
        "{}",
        reference::compare(
            "CodedTeraSort r = 5 (paper Table II vs model)",
            &reference::table2_coded_r5(),
            &rows[2].breakdown
        )
    );

    let paper_speedups = [2.16, 3.39];
    for (row, paper) in rows[1..].iter().zip(paper_speedups) {
        println!(
            "{}  speedup: {:.2}× (paper: {paper:.2}×)",
            row.label,
            row.speedup.unwrap()
        );
    }
}
