//! The paper's Fig. 1 worked example: Q = 3 functions, N = 6 files,
//! K = 3 nodes — uncoded MapReduce needs 12 intermediate transfers,
//! an r = 2 uncoded scheme needs 6, and Coded MapReduce needs 3 coded
//! multicasts.
//!
//! This walkthrough reproduces those numbers with the real coding layer:
//! placement, keep rules, Algorithm 1 packets and Algorithm 2 decoding.
//!
//! ```sh
//! cargo run --release --example paper_fig1
//! ```

use bytes::Bytes;
use coded_terasort::prelude::*;

/// One "intermediate value" of Fig. 1: the (function, file) pair rendered
/// as bytes. Sized equally so transfer counts equal transfer volume.
fn value(function: usize, file: usize) -> Vec<u8> {
    format!("v[q={function},n={file}]").into_bytes()
}

fn main() {
    let k = 3;

    println!("=== Fig. 1(a): uncoded MapReduce, r = 1 ===\n");
    // Node i maps files 2i, 2i+1 (paper: 2i-1, 2i one-based). Every node
    // needs the intermediate of its own function from all 6 files; 2 are
    // local, 4 must be unicast to it.
    let mut transfers_uncoded = 0;
    for node in 0..k {
        let local_files = [2 * node, 2 * node + 1];
        for file in 0..6 {
            if !local_files.contains(&file) {
                transfers_uncoded += 1;
            }
        }
    }
    println!("each node holds 2 files, needs its function's value from all 6;");
    println!("unicast transfers required: {transfers_uncoded}  (paper: 12)\n");
    assert_eq!(transfers_uncoded, 12);

    println!("=== Fig. 1(b) without coding: r = 2, uncoded shuffle ===\n");
    // Every file on 2 nodes: each node now has 4 of 6 values locally.
    // The paper uses N = 6 files (two per node pair); the canonical
    // placement uses C(3,2) = 3 files of twice the size — identical bytes,
    // so we count each missing file as 2 paper-units.
    let plan = PlacementPlan::new(k, 2).unwrap();
    let units_per_file = 6 / plan.num_files() as usize;
    let mut transfers_r2 = 0;
    for node in 0..k {
        let have: Vec<u64> = plan.files_of_node(node).map(|f| f.0).collect();
        transfers_r2 +=
            (0..plan.num_files()).filter(|f| !have.contains(f)).count() * units_per_file;
    }
    println!("with every file on r = 2 nodes, each node misses 2 values;");
    println!("unicast transfers required: {transfers_r2}  (paper: 6)\n");
    assert_eq!(transfers_r2, 6);

    println!("=== Fig. 1(b) with coding: r = 2, coded multicast ===\n");
    // Build the real Map output under the keep rule, then encode.
    // The single multicast group is M = {0,1,2} = all nodes.
    let mut stores: Vec<MapOutputStore> = (0..k).map(|_| MapOutputStore::new()).collect();
    for (node, store) in stores.iter_mut().enumerate() {
        for fid in plan.files_of_node(node) {
            let file_nodes = plan.nodes_of_file(fid);
            for t in 0..k {
                if plan.keeps_intermediate(node, file_nodes, t) {
                    store.insert(t, file_nodes, Bytes::from(value(t, fid.0 as usize)));
                }
            }
        }
    }

    let groups = MulticastGroups::new(k, 2).unwrap();
    let mut packets = Vec::new();
    for (sender, store) in stores.iter().enumerate() {
        let enc = Encoder::new(k, 2, sender).unwrap();
        for pkt in enc.encode_all(store).unwrap() {
            println!(
                "node {} multicasts E_{{{},{}}}: {} payload bytes to {}",
                sender + 1,
                pkt.group.display_one_based(),
                sender + 1,
                pkt.payload.len(),
                pkt.group.without(sender).display_one_based(),
            );
            packets.push(pkt);
        }
    }
    println!(
        "\ncoded multicasts required: {}  (paper: 3)\n",
        packets.len()
    );
    assert_eq!(packets.len() as u64, groups.num_groups() * 3);
    assert_eq!(packets.len(), 3);

    // Decode at every receiver and verify everyone recovers what they need.
    for (node, store) in stores.iter().enumerate() {
        let mut pipe = coded_terasort::coding::DecodePipeline::new(k, 2, node).unwrap();
        let mut got = Vec::new();
        for pkt in &packets {
            if pkt.group.contains(node) && pkt.sender != node {
                if let Some((file, data)) = pipe.accept(pkt, store).unwrap() {
                    got.push((file, data));
                }
            }
        }
        for (file, data) in &got {
            let fid = plan.file_of_nodes(*file).unwrap();
            assert_eq!(*data, value(node, fid.0 as usize));
            println!(
                "node {} decoded its missing value for file {} ✓",
                node + 1,
                file.display_one_based()
            );
        }
        assert_eq!(
            got.len(),
            1,
            "each node misses exactly one whole value here"
        );
    }

    println!("\ncommunication loads (normalized):");
    println!(
        "  uncoded r=1: {:.3}  |  uncoded r=2: {:.3}  |  coded r=2: {:.3}",
        theory::uncoded_comm_load(1, 3),
        theory::uncoded_comm_load(2, 3),
        theory::coded_comm_load(2, 3)
    );
    println!("  → 12 : 6 : 3, the 2× coding gain of the paper's example.");
}
