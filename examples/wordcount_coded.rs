//! Beyond sorting (paper §VI): coded WordCount.
//!
//! The coded shuffle is workload-agnostic — anything with
//! concatenation-mergeable intermediates and an order-insensitive reduce
//! gains the same r× communication reduction. This example runs WordCount
//! (and Grep) uncoded and coded over synthetic text and compares traffic.
//!
//! ```sh
//! cargo run --release --example wordcount_coded
//! ```

use bytes::Bytes;
use coded_terasort::mapreduce::grep::Grep;
use coded_terasort::mapreduce::wordcount::WordCount;
use coded_terasort::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic prose: a handful of hot stop-words plus a large long-tail
/// vocabulary (Zipf-flavored), so per-file intermediates grow with file
/// size the way real text corpora do.
fn synthetic_text(words: usize, seed: u64) -> Bytes {
    const HOT: &[&str] = &["the", "of", "and", "to", "in", "code", "data", "sort"];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    for i in 0..words {
        let z = (rng.next_u64() % 100) as usize;
        if z < 30 {
            out.push_str(HOT[rng.next_u64() as usize % HOT.len()]);
        } else {
            // Long tail: ~60k distinct word forms.
            out.push_str(&format!("w{}", rng.next_u64() % 60_000));
        }
        out.push(if i % 12 == 11 { '\n' } else { ' ' });
    }
    out.push('\n');
    Bytes::from(out)
}

fn main() {
    let k = 5;
    let r = 2;
    let input = synthetic_text(200_000, 7);
    println!(
        "WordCount over {:.1} MB of text, K = {k}, r = {r}\n",
        input.len() as f64 / 1e6
    );

    let uncoded = run_uncoded(&WordCount, input.clone(), &EngineConfig::local(k, 1))
        .expect("uncoded wordcount");
    let coded =
        run_coded(&WordCount, input.clone(), &EngineConfig::local(k, r)).expect("coded wordcount");

    assert_eq!(
        uncoded.outputs, coded.outputs,
        "coded and uncoded WordCount must agree"
    );
    println!("Outputs identical across engines. ✓");

    // Show the top words from partition outputs.
    let mut lines: Vec<String> = coded
        .outputs
        .iter()
        .flat_map(|o| {
            String::from_utf8_lossy(o)
                .lines()
                .map(String::from)
                .collect::<Vec<_>>()
        })
        .collect();
    lines.sort_by_key(|l| {
        std::cmp::Reverse(
            l.rsplit('\t')
                .next()
                .and_then(|c| c.parse::<u64>().ok())
                .unwrap_or(0),
        )
    });
    println!("\nTop words:");
    for l in lines.iter().take(5) {
        println!("  {l}");
    }

    println!("\nShuffle traffic:");
    println!("  uncoded : {:>10} bytes", uncoded.stats.shuffle_bytes());
    println!("  coded   : {:>10} bytes", coded.stats.shuffle_bytes());
    println!(
        "  gain    : {:.2}×  (ideal r-fold gain bounded by (1-1/K)/((1/r)(1-r/K)) = {:.2}×)",
        uncoded.stats.shuffle_bytes() as f64 / coded.stats.shuffle_bytes() as f64,
        theory::uncoded_comm_load(1, k) / theory::coded_comm_load(r, k)
    );

    // Grep too (the paper names it explicitly).
    let grep = Grep::new(&b"code"[..]);
    let g_uncoded =
        run_uncoded(&grep, input.clone(), &EngineConfig::local(k, 1)).expect("uncoded grep");
    let g_coded = run_coded(&grep, input, &EngineConfig::local(k, r)).expect("coded grep");
    assert_eq!(g_uncoded.outputs, g_coded.outputs);
    let matches: usize = g_coded
        .outputs
        .iter()
        .map(|o| o.iter().filter(|&&b| b == b'\n').count())
        .sum();
    println!("\nGrep \"code\": {matches} matching lines; engines agree. ✓");
    println!(
        "  uncoded shuffle {} B  vs coded {} B",
        g_uncoded.stats.shuffle_bytes(),
        g_coded.stats.shuffle_bytes()
    );
}
