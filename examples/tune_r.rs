//! Choosing the redundancy r* (paper §II, eqs. (4)–(5), and §III-B).
//!
//! From baseline stage times, eq. (4) predicts the coded total at any r:
//! `r·T_map + T_shuffle/r + T_reduce`, minimized at `r* ≈ √(Ts/Tm)`. The
//! paper's Table I numbers give r* = 23 and a ~10× predicted gain — but
//! the *practical* optimum is far smaller because CodeGen grows as
//! C(K, r+1). This example contrasts the idealized rule with the model's
//! full prediction.
//!
//! ```sh
//! cargo run --release --example tune_r
//! ```

use coded_terasort::bench::Experiment;
use coded_terasort::prelude::*;

fn main() {
    // The paper's Table I baseline.
    let (t_map, t_shuffle, t_reduce) = (1.86, 945.72, 10.47);
    println!("Paper Table I baseline: Map {t_map} s, Shuffle {t_shuffle} s, Reduce {t_reduce} s\n");

    let root = theory::optimal_r_real(t_map, t_shuffle);
    println!(
        "eq. (4) idealized rule: r* = ⌈√(Ts/Tm)⌉ = ⌈{root:.2}⌉ = {}",
        root.ceil()
    );
    println!(
        "eq. (5) idealized optimal total: {:.1} s  ({:.1}× vs {:.1} s)\n",
        theory::predicted_optimal_time(t_map, t_shuffle, t_reduce),
        (t_map + t_shuffle + t_reduce) / theory::predicted_optimal_time(t_map, t_shuffle, t_reduce),
        t_map + t_shuffle + t_reduce
    );

    println!("eq. (4) prediction by r (no CodeGen/multicast overheads):");
    for r in [1usize, 2, 3, 5, 8, 12, 16, 23, 32] {
        println!(
            "  r = {r:>2}: {:>7.1} s  ({:.2}×)",
            theory::predicted_total_time(r, t_map, t_shuffle, t_reduce),
            theory::predicted_speedup(r, t_map, t_shuffle, t_reduce)
        );
    }

    // Now the full model, which charges CodeGen ∝ C(K, r+1), the
    // logarithmic multicast penalty, and memory pressure — the effects
    // that made the paper cap r at 5 (§V-C).
    let k = 16;
    println!("\nFull model at K = {k} (12 GB, 100 Mbps), including CodeGen:");
    let exp = Experiment::paper(k);
    let base = exp.run_uncoded();
    let mut best = (1usize, base.breakdown.total_s());
    for r in 2..=8 {
        let res = exp.run_coded(r);
        let total = res.breakdown.total_s();
        println!(
            "  r = {r}: total {total:>7.1} s  (CodeGen {:>6.1} s, Shuffle {:>6.1} s)  speedup {:.2}×",
            res.breakdown.codegen_s,
            res.breakdown.shuffle_s,
            base.breakdown.total_s() / total
        );
        if total < best.1 {
            best = (r, total);
        }
    }
    println!(
        "\nbest swept r at K = {k}: r = {} — far below the idealized r* = 23: the\n\
         multicast penalty and CodeGen already ate most of eq. (4)'s promise.\n\
         The paper additionally caps r at 5 because storage grows r× (its\n\
         footnote 6) and CodeGen ∝ C(K, r+1) explodes at larger K:",
        best.0
    );
    // The K = 20 CodeGen wall, straight from the group counts.
    for r in [3usize, 5, 7, 9] {
        let groups = cts_core::combinatorics::binomial(20, r as u64 + 1);
        println!(
            "  K = 20, r = {r}: C(20,{}) = {groups:>7} groups → modeled CodeGen ≈ {:>6.1} s",
            r + 1,
            groups as f64 * 3.3e-3
        );
    }
    println!("  (at r = 9 CodeGen alone exceeds the entire r = 5 run — the paper's\n   'speedup decreases' regime, §V-C.)");
}
