//! Quickstart: sort with TeraSort and CodedTeraSort on an in-memory
//! cluster, verify identical output, and inspect the shuffle savings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use coded_terasort::prelude::*;

fn main() {
    let k = 4; // workers
    let r = 2; // redundancy: each file mapped on 2 nodes
    let records = 50_000; // 5 MB of TeraGen data

    println!("Generating {records} TeraGen records (100 B each)…");
    let input = teragen::generate(records, 42);

    println!("Running conventional TeraSort  (K = {k})…");
    let plain = run_terasort(input.clone(), &SortJob::local(k, 1)).expect("terasort");
    plain.validate().expect("TeraValidate");

    println!("Running CodedTeraSort          (K = {k}, r = {r})…");
    let coded = run_coded_terasort(input, &SortJob::local(k, r)).expect("coded terasort");
    coded.validate().expect("TeraValidate");

    assert_eq!(
        plain.outcome.outputs, coded.outcome.outputs,
        "both algorithms must produce the identical sorted result"
    );
    println!("Outputs identical and globally sorted. ✓\n");

    let plain_bytes = plain.outcome.stats.shuffle_bytes();
    let coded_bytes = coded.outcome.stats.shuffle_bytes();
    println!("Shuffle traffic (bytes on the wire, multicasts counted once):");
    println!("  TeraSort       : {:>12}", plain_bytes);
    println!("  CodedTeraSort  : {:>12}", coded_bytes);
    println!(
        "  reduction      : {:.2}×  (theory: L_uncoded/L_coded = r = {r} as K → ∞;\n\
         \u{20}                  exact gain at K = {k}: {:.2}×)",
        plain_bytes as f64 / coded_bytes as f64,
        theory::uncoded_comm_load(1, k) / theory::coded_comm_load(r, k),
    );

    println!("\nMeasured communication loads (normalized by input size):");
    let d = (records * cts_terasort::RECORD_LEN) as u64;
    println!(
        "  TeraSort       : {:.4}   (theory 1 - 1/K = {:.4})",
        plain.outcome.stats.comm_load(d),
        theory::uncoded_comm_load(1, k)
    );
    println!(
        "  CodedTeraSort  : {:.4}   (theory (1/r)(1 - r/K) = {:.4})",
        coded.outcome.stats.comm_load(d),
        theory::coded_comm_load(r, k)
    );

    println!("\nWall-clock stage times of this in-memory run (coded):");
    let w = coded.outcome.wall.max;
    println!("  CodeGen  {:>8.2?}", w.codegen);
    println!("  Map      {:>8.2?}", w.map);
    println!("  Encode   {:>8.2?}", w.pack_encode);
    println!("  Shuffle  {:>8.2?}", w.shuffle);
    println!("  Decode   {:>8.2?}", w.unpack_decode);
    println!("  Reduce   {:>8.2?}", w.reduce);
    println!("\n(The EC2-scale stage times are produced by the model — see");
    println!(" `cargo bench -p cts-bench` and examples/ec2_emulation.rs.)");
}
