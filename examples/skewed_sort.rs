//! Sorting skewed keys: uniform range partitioning vs quantile sampling.
//!
//! The paper's TeraGen keys are uniform, so equal-width ranges balance
//! reducers exactly. Real key distributions rarely are — with a hot key
//! prefix, range partitioning sends most of the data to one reducer,
//! destroying both the Reduce balance and the shuffle pattern. The
//! sampling partitioner (Hadoop's TotalOrderPartitioner approach) fixes
//! it; coding composes transparently with either.
//!
//! ```sh
//! cargo run --release --example skewed_sort
//! ```

use coded_terasort::prelude::*;
use cts_terasort::teragen::generate_skewed;

fn spread(outputs: &[Vec<u8>]) -> (usize, usize) {
    let min = outputs.iter().map(|o| o.len()).min().unwrap_or(0);
    let max = outputs.iter().map(|o| o.len()).max().unwrap_or(0);
    (min, max)
}

fn main() {
    let k = 8;
    let r = 2;
    let records = 40_000;
    // 60% of records share one 16-bit key prefix.
    let input = generate_skewed(records, 7, 0.6, 16);
    println!(
        "{} records ({:.1} MB), 60% sharing one 16-bit key prefix, K = {k}, r = {r}\n",
        records,
        input.len() as f64 / 1e6
    );

    println!("Range partitioning (the paper's, exact for uniform keys):");
    let ranged = run_coded_terasort(input.clone(), &SortJob::local(k, r)).expect("ranged sort");
    ranged.validate().expect("TeraValidate");
    let (min, max) = spread(&ranged.outcome.outputs);
    println!(
        "  partition sizes: min {:.2} MB, max {:.2} MB  → the hot reducer holds {:.0}% of all data",
        min as f64 / 1e6,
        max as f64 / 1e6,
        100.0 * max as f64 / input.len() as f64
    );

    println!("\nQuantile sampling (TotalOrderPartitioner-style, 1-in-16 sample):");
    let sampled = run_coded_terasort(input.clone(), &SortJob::local(k, r).with_sampling(16))
        .expect("sampled sort");
    sampled.validate().expect("TeraValidate");
    let (min, max) = spread(&sampled.outcome.outputs);
    println!(
        "  partition sizes: min {:.2} MB, max {:.2} MB  → largest reducer holds {:.0}%",
        min as f64 / 1e6,
        max as f64 / 1e6,
        100.0 * max as f64 / input.len() as f64
    );

    // Same global sorted list either way.
    let a: Vec<u8> = ranged.outcome.outputs.into_iter().flatten().collect();
    let b: Vec<u8> = sampled.outcome.outputs.into_iter().flatten().collect();
    assert_eq!(a, b);
    println!("\nGlobal sorted output identical under both partitioners. ✓");

    // Reduce-stage implication, through the calibrated model: the slowest
    // reducer defines the stage.
    let model = PerfModel::ec2_paper();
    let mut rs = ranged.outcome.stats.clone();
    let mut ss = sampled.outcome.stats.clone();
    let scale = 12e9 / input.len() as f64;
    rs.scale = scale;
    ss.scale = scale;
    println!(
        "\nmodeled Reduce stage at 12 GB: range-partitioned {:.0} s vs sampled {:.0} s",
        model.reduce_s(&rs),
        model.reduce_s(&ss),
    );
}
